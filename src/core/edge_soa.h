// Struct-of-arrays sub-edge pipeline for the Compute-CDR hot path.
//
// The per-pair cost of a *crossing* pair (one the batch engine's interval
// kernel cannot resolve from boxes) is the §3.1 edge division plus per-piece
// tile classification. The AoS pipeline (core/edge_splitter.h) materialises
// a `ClassifiedEdge` struct per piece and classifies each piece with a
// branchy scalar cascade; this header is the batched alternative:
//
//  * `AppendSplitEdgesSoA` runs the shared split core
//    (core/edge_split_detail.h) over a polygon's edges and appends each
//    piece's endpoints into four contiguous double lanes (x0/y0/x1/y1) of a
//    reusable `EdgeSoA` scratch — no per-piece structs, one grow-only
//    capacity check per polygon;
//  * `ClassifySubEdgesSoA` then classifies every lane in two branch-free
//    passes (column, row) against the reference bands, the same arithmetic
//    select idiom as the engine's interval kernel, writing a 4-bit
//    `(column << 2) | row` code per lane. The passes carry the
//    interior-side tie-breaks of the scalar classifier (sub-edges lying
//    exactly ON an mbb line resolve by the ring direction), so the codes
//    are bit-identical to `ClassifySubEdge` on every piece the splitter
//    can emit;
//  * `SubEdgeCodeMasks()` maps codes to 9-bit CardinalRelation masks for
//    the qualitative OR-reduction; Compute-CDR% consumes the codes
//    directly for its per-tile trapezoid accumulation.
//
// The batched entry point is compiled with CARDIR_KERNEL_CLONES
// (util/target_clones.h): multi-versioned for AVX2 with ifunc dispatch on
// x86-64 GCC, compiled out under the sanitizers.

#ifndef CARDIR_CORE_EDGE_SOA_H_
#define CARDIR_CORE_EDGE_SOA_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/tile.h"
#include "geometry/box.h"
#include "geometry/polygon.h"

namespace cardir {

/// Reusable struct-of-arrays sub-edge scratch. Lanes are parallel arrays;
/// `count` is the number of live lanes (the vectors are capacity, not
/// size-authoritative — `Clear` keeps the allocations). One EdgeSoA per
/// worker thread amortises the buffers across every pair the worker
/// computes (the engine's phase-2 crossing chunks hand one through
/// `WorkerScratch`/`CdrScratch`).
struct EdgeSoA {
  EdgeSoA() = default;
  // Move-only: the lane buffers are charged to the mem.edge_soa telemetry
  // arena on growth and released in the destructor, so a copy would
  // double-count. Moves leave the source's vectors empty (libstdc++
  // guarantees this for the default allocator), so the moved-from
  // destructor releases zero bytes — accounting stays balanced.
  EdgeSoA(EdgeSoA&&) = default;
  EdgeSoA& operator=(EdgeSoA&&) = default;
  EdgeSoA(const EdgeSoA&) = delete;
  EdgeSoA& operator=(const EdgeSoA&) = delete;
  ~EdgeSoA();

  std::vector<double> x0, y0, x1, y1;  ///< Piece endpoints, directed a→b.
  std::vector<uint8_t> code;           ///< (column << 2) | row per lane.
  size_t count = 0;

  void Clear() { count = 0; }

  /// Grow-only: ensures every lane array can hold at least `lanes` entries.
  void EnsureCapacity(size_t lanes);

  /// Bytes held by the five lane arrays (size == capacity under the
  /// grow-only doubling policy; this is what the mem.edge_soa gauges see).
  size_t LaneBytes() const {
    return x0.size() * (4 * sizeof(double) + sizeof(uint8_t));
  }
};

/// Packs a column/row pair into the 4-bit sub-edge code. Same layout as the
/// engine's interval-kernel class-pair codes (x class high, y class low).
inline constexpr uint8_t SubEdgeCode(TileColumn column, TileRow row) {
  return static_cast<uint8_t>((static_cast<int>(column) << 2) |
                              static_cast<int>(row));
}

inline constexpr uint8_t kNumSubEdgeCodes = 16;

/// 9-bit CardinalRelation mask of the tile at each code (0 for the six
/// unreachable code values). Built from core/tile.h's TileAt as a constexpr
/// table and proven against it by static_assert in edge_soa.cc — a
/// table/TileAt divergence is a build break.
const std::array<uint16_t, kNumSubEdgeCodes>& SubEdgeCodeMasks();

/// The tile at each code (Tile::kB for unreachable values — callers index
/// only with codes produced by ClassifySubEdgesSoA).
const std::array<Tile, kNumSubEdgeCodes>& SubEdgeCodeTiles();

/// Splits every edge of `polygon` at the `mbb` lines (shared split core, so
/// piece sets match core/edge_splitter.h exactly) and appends the pieces'
/// endpoints to `soa`'s lanes. Returns the number of lanes appended. Does
/// not classify — call ClassifySubEdgesSoA once per batch.
size_t AppendSplitEdgesSoA(const Polygon& polygon, const Box& mbb,
                           EdgeSoA* soa);

/// What AppendSplitClassifySoA appended: the lane count and the "codes
/// present" bitmap (OR of `1 << code` over the appended lanes).
struct SplitClassifyResult {
  size_t pieces = 0;
  uint16_t code_bitmap = 0;
};

/// Fused split + classify: appends `polygon`'s sub-edge lanes exactly like
/// AppendSplitEdgesSoA and fills their codes in the same pass, reusing the
/// edge extents the split precheck already computed (a non-crossing edge —
/// the majority even inside a crossing pair — is classified from the
/// min/max the straddle test needed anyway, so it never gets re-loaded by
/// a second pass). The hot loop is the same branch-free interval-class
/// arithmetic as ClassifySubEdgesSoA, with the identical on-line-tie /
/// residual-straddle fallback: such lanes trigger one exact scalar
/// re-classification of the appended range. This is the product hot path;
/// the standalone ClassifySubEdgesSoA kernel remains for callers that
/// stage lanes first (and as the differential anchor in tests).
SplitClassifyResult AppendSplitClassifySoA(const Polygon& polygon,
                                           const Box& mbb, EdgeSoA* soa);

/// Store-free variant for the qualitative path: identical piece walk and
/// classification as AppendSplitClassifySoA, but nothing is appended — the
/// per-lane endpoint/code stores are skipped entirely, since Compute-CDR
/// only folds the codes-present bitmap into a relation mask. On the rare
/// tie/straddle fallback the pieces are re-materialised into
/// `fallback_scratch` (cleared first; its lanes are scratch only, callers
/// must not rely on its contents) and re-classified through the exact
/// scalar cascade, so the bitmap is bit-identical to the appending variant
/// on every input.
SplitClassifyResult SplitClassifyBitmapSoA(const Polygon& polygon,
                                           const Box& mbb,
                                           EdgeSoA* fallback_scratch);

/// Classifies lanes [0, soa->count) against the bands of `mbb` (which must
/// be non-empty), writing each lane's code, and returns the "codes
/// present" bitmap (OR of `1 << code` over all lanes — the qualitative
/// path expands it through SubEdgeCodeMasks without re-touching the
/// lanes). Branch-free fused column/row kernel for the common case; lanes
/// lying exactly ON a band line (tie-broken by ring direction) or hitting
/// the defensive residual-straddle case fall back to the exact scalar
/// classification for the whole batch.
uint16_t ClassifySubEdgesSoA(EdgeSoA* soa, const Box& mbb);

}  // namespace cardir

#endif  // CARDIR_CORE_EDGE_SOA_H_
