#include "core/relation_pair.h"

#include "core/compute_cdr.h"

namespace cardir {

Result<RelationPair> ComputeRelationPair(const Region& a, const Region& b) {
  CARDIR_ASSIGN_OR_RETURN(CardinalRelation a_to_b, ComputeCdr(a, b));
  CARDIR_ASSIGN_OR_RETURN(CardinalRelation b_to_a, ComputeCdr(b, a));
  return RelationPair{a_to_b, b_to_a};
}

std::ostream& operator<<(std::ostream& os, const RelationPair& pair) {
  return os << "(" << pair.a_to_b << ", " << pair.b_to_a << ")";
}

}  // namespace cardir
