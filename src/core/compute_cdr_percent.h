// Algorithm Compute-CDR% (paper §3.2, Fig. 10).
//
// Computes the cardinal direction relation *with percentages* between a
// primary region a and a reference region b without clipping any polygon:
// after dividing a's edges at the mbb(b) lines (core/edge_splitter.h), the
// area of a inside each tile is accumulated from the signed trapezoid
// expressions of Definition 4 against a per-tile reference line:
//
//   NW, W, SW  →  E'_{m1}  (west line  x = m1)
//   NE, E, SE  →  E'_{m2}  (east line  x = m2)
//   S          →  E_{l1}   (south line y = l1)
//   N          →  E_{l2}   (north line y = l2)
//   B          →  |a_{B+N}| − |a_N|, where a_{B+N} accumulates E_{l1} over
//                 all edges lying in B or N.
//
// The choice of reference line makes the "virtual" boundary segments of
// a ∩ tile (which lie on the mbb lines) contribute exactly zero, so omitting
// them is sound. (The paper's Fig. 10 pseudo-code reuses m1 for the eastern
// tiles; we follow the worked derivation in §3.2, which uses the east line
// m2 — using m1 would count the spurious rectangle between the two vertical
// lines.)
//
// Running time: O(k_a + k_b) (Theorem 2).

#ifndef CARDIR_CORE_COMPUTE_CDR_PERCENT_H_
#define CARDIR_CORE_COMPUTE_CDR_PERCENT_H_

#include <array>

#include "core/compute_cdr.h"
#include "core/percentage_matrix.h"
#include "geometry/box.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Result of Compute-CDR% with the intermediate per-tile areas exposed for
/// testing and for callers that want absolute areas rather than percentages.
struct CdrPercentComputation {
  PercentageMatrix matrix;
  /// area(tile(b) ∩ a) per tile, in square coordinate units.
  std::array<double, kNumTiles> tile_areas{};
  /// Sum of tile areas; equals area(a) up to floating-point error.
  double total_area = 0.0;
};

/// Runs Compute-CDR%. Fails with kInvalidArgument when either region fails
/// `Region::Validate()` (which implies area(a) > 0, so percentages are well
/// defined). Regions must use clockwise rings.
Result<CdrPercentComputation> ComputeCdrPercentDetailed(
    const Region& primary, const Region& reference);

/// Convenience wrapper returning only the percentage matrix.
Result<PercentageMatrix> ComputeCdrPercent(const Region& primary,
                                           const Region& reference);

/// Unchecked fast path used by benchmarks (no validation). Runs the SoA
/// pipeline (core/edge_soa.h): split into lane scratch, branch-free batch
/// classification, per-tile SIMD trapezoid accumulation.
CdrPercentComputation ComputeCdrPercentUnchecked(const Region& primary,
                                                 const Region& reference);

/// Like above, but takes the reference's bounding box directly and reuses
/// `scratch` (never null) instead of the thread-local one the two-argument
/// form shares —
/// the form batch callers computing many pairs per thread use.
CdrPercentComputation ComputeCdrPercentUnchecked(const Region& primary,
                                                 const Box& reference_mbb,
                                                 CdrScratch* scratch);

/// Scalar reference implementation: the pre-SoA per-piece loop (AoS split
/// via core/edge_splitter.h, one running sum per tile, strictly sequential
/// accumulation order). Kept as the differential anchor for the SoA path —
/// the exact-rational oracle bounds both against ground truth, and the
/// bench ablation (bench_compute_cdr_percent) reports SoA vs scalar.
CdrPercentComputation ComputeCdrPercentScalar(const Region& primary,
                                              const Region& reference);

}  // namespace cardir

#endif  // CARDIR_CORE_COMPUTE_CDR_PERCENT_H_
