// Algorithm Compute-CDR (paper §3.1, Fig. 5).
//
// Computes the qualitative cardinal direction relation R with a R b between
// regions a (primary) and b (reference) in REG*, in a single pass over the
// edges of a: each edge is divided at the mbb(b) lines into sub-edges lying
// in exactly one tile, the tiles are tile-unioned (Definition 2), and a
// per-polygon containment test of the centre of mbb(b) adds the B tile when
// a polygon of `a` swallows the whole bounding box without touching it.
//
// Running time: O(k_a + k_b) where k_a, k_b are the total edge counts
// (Theorem 1).

#ifndef CARDIR_CORE_COMPUTE_CDR_H_
#define CARDIR_CORE_COMPUTE_CDR_H_

#include "core/cardinal_relation.h"
#include "core/edge_soa.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Result of Compute-CDR together with instrumentation used by the
/// edge-introduction experiments (E4/E5 in DESIGN.md).
struct CdrComputation {
  /// The relation R such that `primary R reference` holds.
  CardinalRelation relation;
  /// Total edges of the primary region before division.
  size_t input_edges = 0;
  /// Total sub-edges after division at the mbb lines (Example 3: the
  /// quadrangle of Fig. 4 yields 9; polygon clipping would yield 19).
  size_t output_edges = 0;
};

/// Runs Compute-CDR. Fails with kInvalidArgument when either region fails
/// `Region::Validate()`. Both regions must use clockwise polygon rings (call
/// `Region::EnsureClockwise()` when unsure).
Result<CdrComputation> ComputeCdrDetailed(const Region& primary,
                                          const Region& reference);

/// Convenience wrapper returning only the relation.
Result<CardinalRelation> ComputeCdr(const Region& primary,
                                    const Region& reference);

/// Locally aggregated Compute-CDR instrumentation for tight loops. A caller
/// invoking Compute-CDR once per pair (the batch engine's chunk loop, the
/// benchmark all-pairs loops) accumulates into one of these — plain integer
/// adds — and flushes to the metrics registry once per chunk, keeping
/// per-call atomics off the hot path (~22 ns per 4-counter flush on a
/// ~400 ns call otherwise; see DESIGN.md §3.14).
struct CdrMetricsDelta {
  uint64_t runs = 0;
  uint64_t edges_input = 0;
  uint64_t edges_split = 0;
  uint64_t pip_tests = 0;

  /// Adds the accumulated deltas to the core.* counters and zeroes this.
  void FlushToRegistry();
};

/// Reusable working memory for Compute-CDR and Compute-CDR%. A fresh run's
/// only heap allocation is the SoA sub-edge scratch the edge splitter
/// appends into (core/edge_soa.h); a caller computing many pairs (the batch
/// engine's phase-2 crossing chunks via `WorkerScratch`, the benchmark
/// loops) keeps one CdrScratch per thread and hands it to every call, so
/// the lane capacity is paid once instead of per pair.
struct CdrScratch {
  EdgeSoA soa;
};

/// Unchecked fast path used by benchmarks: skips validation. Preconditions:
/// both regions valid, clockwise, reference mbb non-empty.
///
/// The two-argument form flushes its core.* counter deltas per call; the
/// three-argument form accumulates them into `metrics` (never null) for the
/// caller to flush; the four-argument form additionally reuses `scratch`
/// (never null) instead of the thread-local scratch the other forms share.
CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference);
CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics);
CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch);

/// Like the four-argument form, but takes the reference's bounding box
/// directly — the algorithm never looks at the reference's geometry beyond
/// its mbb, and a caller computing many pairs against profiled boxes (the
/// batch engine) already holds every mbb, so re-deriving it from the
/// polygon vertices on each call would be the dominant per-pair overhead.
CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Box& reference_mbb,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch);

}  // namespace cardir

#endif  // CARDIR_CORE_COMPUTE_CDR_H_
