#include "core/compute_cdr_percent.h"

#include <cmath>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "core/edge_soa.h"
#include "core/edge_splitter.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/logging.h"
#include "util/target_clones.h"

namespace cardir {
namespace {

// Signed accumulators, one per tile plus the combined B+N term (Fig. 10),
// and the locally aggregated instrumentation.
struct SignedSums {
  std::array<double, kNumTiles> signed_sum{};
  double signed_b_plus_n = 0.0;
  size_t input_edges = 0;
  size_t split_edges = 0;
  size_t trapezoid_terms = 0;
};

// Sub-edge codes of the tiles each accumulation pass selects on.
inline constexpr uint8_t kCodeSW = SubEdgeCode(TileColumn::kWest, TileRow::kSouth);
inline constexpr uint8_t kCodeW = SubEdgeCode(TileColumn::kWest, TileRow::kMiddle);
inline constexpr uint8_t kCodeNW = SubEdgeCode(TileColumn::kWest, TileRow::kNorth);
inline constexpr uint8_t kCodeSE = SubEdgeCode(TileColumn::kEast, TileRow::kSouth);
inline constexpr uint8_t kCodeE = SubEdgeCode(TileColumn::kEast, TileRow::kMiddle);
inline constexpr uint8_t kCodeNE = SubEdgeCode(TileColumn::kEast, TileRow::kNorth);
inline constexpr uint8_t kCodeS = SubEdgeCode(TileColumn::kMiddle, TileRow::kSouth);
inline constexpr uint8_t kCodeB = SubEdgeCode(TileColumn::kMiddle, TileRow::kMiddle);
inline constexpr uint8_t kCodeN = SubEdgeCode(TileColumn::kMiddle, TileRow::kNorth);

// Per-tile SIMD accumulation over one polygon's classified lanes: three
// masked passes (west column against E'_{m1}, east column against E'_{m2},
// middle column against E_{l1}/E_{l2}), each carrying explicit 4-wide
// partial accumulators so the reduction vectorizes without the compiler
// having to reassociate strict FP itself. The reassociation (4 partial
// sums per tile instead of one running sum) changes the rounding of the
// per-tile totals relative to the scalar reference path by O(n·ulp); the
// exact-rational oracle tier (tests/properties/exact_cdr_oracle_test.cc)
// bounds both paths against ground truth.
CARDIR_KERNEL_CLONES
void AccumulateTrapezoidsSoA(const EdgeSoA& soa, double m1, double m2,
                             double l1, double l2, SignedSums* sums) {
  const size_t n = soa.count;
  const double* x0 = soa.x0.data();
  const double* y0 = soa.y0.data();
  const double* x1 = soa.x1.data();
  const double* y1 = soa.y1.data();
  const uint8_t* codes = soa.code.data();

  auto run_pass = [&](auto&& term, uint8_t c0, uint8_t c1, uint8_t c2,
                      double* out0, double* out1, double* out2) {
    double acc0[4] = {0, 0, 0, 0};
    double acc1[4] = {0, 0, 0, 0};
    double acc2[4] = {0, 0, 0, 0};
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      for (size_t lane = 0; lane < 4; ++lane) {
        const size_t k = i + lane;
        const double t = term(k);
        const uint8_t c = codes[k];
        acc0[lane] += (c == c0) ? t : 0.0;
        acc1[lane] += (c == c1) ? t : 0.0;
        acc2[lane] += (c == c2) ? t : 0.0;
      }
    }
    for (; i < n; ++i) {
      const double t = term(i);
      const uint8_t c = codes[i];
      acc0[0] += (c == c0) ? t : 0.0;
      acc1[0] += (c == c1) ? t : 0.0;
      acc2[0] += (c == c2) ? t : 0.0;
    }
    *out0 += (acc0[0] + acc0[1]) + (acc0[2] + acc0[3]);
    *out1 += (acc1[0] + acc1[1]) + (acc1[2] + acc1[3]);
    *out2 += (acc2[0] + acc2[1]) + (acc2[2] + acc2[3]);
  };

  std::array<double, kNumTiles>& s = sums->signed_sum;
  // West column: E'_{m1} (Def. 4) for NW, W, SW.
  run_pass([&](size_t k) {
    return 0.5 * (y1[k] - y0[k]) * (x0[k] + x1[k] - 2.0 * m1);
  }, kCodeNW, kCodeW, kCodeSW, &s[static_cast<int>(Tile::kNW)],
           &s[static_cast<int>(Tile::kW)], &s[static_cast<int>(Tile::kSW)]);
  // East column: E'_{m2} for NE, E, SE.
  run_pass([&](size_t k) {
    return 0.5 * (y1[k] - y0[k]) * (x0[k] + x1[k] - 2.0 * m2);
  }, kCodeNE, kCodeE, kCodeSE, &s[static_cast<int>(Tile::kNE)],
           &s[static_cast<int>(Tile::kE)], &s[static_cast<int>(Tile::kSE)]);
  // Middle column: E_{l1} for S and for the combined B+N accumulator
  // (edges lying in B or N), E_{l2} for N. Folded into one pass computing
  // both horizontal terms per lane.
  {
    double acc_s[4] = {0, 0, 0, 0};
    double acc_n[4] = {0, 0, 0, 0};
    double acc_bn[4] = {0, 0, 0, 0};
    size_t count_n = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      for (size_t lane = 0; lane < 4; ++lane) {
        const size_t k = i + lane;
        const double dx = x1[k] - x0[k];
        const double sy = y0[k] + y1[k];
        const double th1 = 0.5 * dx * (sy - 2.0 * l1);
        const double th2 = 0.5 * dx * (sy - 2.0 * l2);
        const uint8_t c = codes[k];
        acc_s[lane] += (c == kCodeS) ? th1 : 0.0;
        acc_n[lane] += (c == kCodeN) ? th2 : 0.0;
        acc_bn[lane] += (c == kCodeN || c == kCodeB) ? th1 : 0.0;
        count_n += (c == kCodeN) ? 1u : 0u;
      }
    }
    for (; i < n; ++i) {
      const double dx = x1[i] - x0[i];
      const double sy = y0[i] + y1[i];
      const double th1 = 0.5 * dx * (sy - 2.0 * l1);
      const double th2 = 0.5 * dx * (sy - 2.0 * l2);
      const uint8_t c = codes[i];
      acc_s[0] += (c == kCodeS) ? th1 : 0.0;
      acc_n[0] += (c == kCodeN) ? th2 : 0.0;
      acc_bn[0] += (c == kCodeN || c == kCodeB) ? th1 : 0.0;
      count_n += (c == kCodeN) ? 1u : 0u;
    }
    s[static_cast<int>(Tile::kS)] += (acc_s[0] + acc_s[1]) + (acc_s[2] + acc_s[3]);
    s[static_cast<int>(Tile::kN)] += (acc_n[0] + acc_n[1]) + (acc_n[2] + acc_n[3]);
    sums->signed_b_plus_n += (acc_bn[0] + acc_bn[1]) + (acc_bn[2] + acc_bn[3]);
    // A piece contributes one term unless it lies in B, plus one more for
    // the B+N accumulator when it lies in B or N — which telescopes to
    // lanes + |{N lanes}| (the B lanes swap their skipped private term for
    // their B+N term).
    sums->trapezoid_terms += n + count_n;
  }
}

// Shared epilogue: a_B derivation, per-tile absolute areas, matrix build,
// metric flush and audit seams. `primary` is only read under CARDIR_AUDIT.
CdrPercentComputation FinalizeSums(const SignedSums& sums,
                                   const Region& primary) {
  CARDIR_METRIC_COUNT("core.percent.runs", 1);
  CARDIR_METRIC_COUNT("core.edges.input", sums.input_edges);
  CARDIR_METRIC_COUNT("core.edges.split", sums.split_edges);
  CARDIR_METRIC_COUNT("core.percent.trapezoid_terms", sums.trapezoid_terms);

  CdrPercentComputation result;
  for (Tile t : kAllTiles) {
    result.tile_areas[static_cast<int>(t)] =
        std::abs(sums.signed_sum[static_cast<int>(t)]);
  }
  // a_B = |a_{B+N}| − |a_N|. When a barely (or never) enters B the two
  // accumulators are large and near-equal, leaving an O(ulp) cancellation
  // residue of either sign; treating anything within floating-point noise
  // of the accumulators as exact zero keeps measure-zero B contacts from
  // surfacing as a spurious positive percentage.
  const double area_n = result.tile_areas[static_cast<int>(Tile::kN)];
  const double area_b = std::abs(sums.signed_b_plus_n) - area_n;
  const double noise =
      1e-12 * std::max(std::abs(sums.signed_b_plus_n), area_n);
  result.tile_areas[static_cast<int>(Tile::kB)] =
      area_b <= noise ? 0.0 : area_b;

  for (double area : result.tile_areas) result.total_area += area;
  result.matrix = PercentageMatrix::FromAreas(result.tile_areas);

  // Audit seam: the accumulated tile areas must reproduce the region's
  // shoelace area, the matrix must be a valid percentage distribution, and
  // Definition 4's trapezoid totals must telescope per ring.
  if constexpr (kAuditEnabled) {
    CARDIR_AUDIT(AuditTileAreasMatchRegion(result.tile_areas,
                                           result.total_area, primary));
    CARDIR_AUDIT(AuditPercentMatrix(result.matrix));
    for (const Polygon& polygon : primary.polygons()) {
      CARDIR_AUDIT(AuditTrapezoidTotals(polygon));
    }
  }
  return result;
}

}  // namespace

CdrPercentComputation ComputeCdrPercentUnchecked(const Region& primary,
                                                 const Box& reference_mbb,
                                                 CdrScratch* scratch) {
  const Box& mbb = reference_mbb;
  CARDIR_DCHECK(!mbb.IsEmpty());
  CARDIR_DCHECK(scratch != nullptr);
  CARDIR_PROFILE_FRAME("cdr.compute_percent");

  SignedSums sums;
  EdgeSoA& soa = scratch->soa;
  for (const Polygon& polygon : primary.polygons()) {
    sums.input_edges += polygon.size();
    soa.Clear();
    sums.split_edges += AppendSplitClassifySoA(polygon, mbb, &soa).pieces;
    AccumulateTrapezoidsSoA(soa, mbb.min_x(), mbb.max_x(), mbb.min_y(),
                            mbb.max_y(), &sums);
  }
  return FinalizeSums(sums, primary);
}

CdrPercentComputation ComputeCdrPercentUnchecked(const Region& primary,
                                                 const Region& reference) {
  // Same rationale as the qualitative convenience overload: one grow-only
  // scratch per thread instead of five allocations per call.
  thread_local CdrScratch scratch;
  return ComputeCdrPercentUnchecked(primary, reference.BoundingBox(),
                                    &scratch);
}

CdrPercentComputation ComputeCdrPercentScalar(const Region& primary,
                                              const Region& reference) {
  const Box mbb = reference.BoundingBox();
  CARDIR_DCHECK(!mbb.IsEmpty());
  const double m1 = mbb.min_x();
  const double m2 = mbb.max_x();
  const double l1 = mbb.min_y();
  const double l2 = mbb.max_y();

  SignedSums sums;
  std::vector<ClassifiedEdge> pieces;
  for (const Polygon& polygon : primary.polygons()) {
    sums.input_edges += polygon.size();
    for (size_t i = 0; i < polygon.size(); ++i) {
      pieces.clear();
      sums.split_edges += static_cast<size_t>(
          SplitAndClassifyEdge(polygon.edge(i), mbb, &pieces));
      for (const ClassifiedEdge& piece : pieces) {
        const Segment& s = piece.segment;
        if (piece.tile != Tile::kB) ++sums.trapezoid_terms;
        switch (piece.tile) {
          case Tile::kNW:
          case Tile::kW:
          case Tile::kSW:
            sums.signed_sum[static_cast<int>(piece.tile)] +=
                TrapezoidVertical(s, m1);
            break;
          case Tile::kNE:
          case Tile::kE:
          case Tile::kSE:
            sums.signed_sum[static_cast<int>(piece.tile)] +=
                TrapezoidVertical(s, m2);
            break;
          case Tile::kS:
            sums.signed_sum[static_cast<int>(Tile::kS)] +=
                TrapezoidHorizontal(s, l1);
            break;
          case Tile::kN:
            sums.signed_sum[static_cast<int>(Tile::kN)] +=
                TrapezoidHorizontal(s, l2);
            break;
          case Tile::kB:
            // B has no private reference line; only the B+N accumulator
            // below sees its edges.
            break;
        }
        if (piece.tile == Tile::kN || piece.tile == Tile::kB) {
          sums.signed_b_plus_n += TrapezoidHorizontal(s, l1);
          ++sums.trapezoid_terms;
        }
      }
    }
  }
  return FinalizeSums(sums, primary);
}

Result<CdrPercentComputation> ComputeCdrPercentDetailed(
    const Region& primary, const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  CdrPercentComputation computation =
      ComputeCdrPercentUnchecked(primary, reference);
  // Audit seam: tiles holding a positive share of a's area must be tiles
  // of the qualitative Compute-CDR relation (§3.2 refines §3.1).
  if constexpr (kAuditEnabled) {
    CARDIR_AUDIT(AuditQualQuantAgreement(
        ComputeCdrUnchecked(primary, reference).relation, computation.matrix));
  }
  return computation;
}

Result<PercentageMatrix> ComputeCdrPercent(const Region& primary,
                                           const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrPercentComputation computation,
                          ComputeCdrPercentDetailed(primary, reference));
  return computation.matrix;
}

}  // namespace cardir
