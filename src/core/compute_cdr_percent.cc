#include "core/compute_cdr_percent.h"

#include <cmath>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "core/edge_splitter.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace cardir {

CdrPercentComputation ComputeCdrPercentUnchecked(const Region& primary,
                                                 const Region& reference) {
  const Box mbb = reference.BoundingBox();
  CARDIR_DCHECK(!mbb.IsEmpty());
  const double m1 = mbb.min_x();
  const double m2 = mbb.max_x();
  const double l1 = mbb.min_y();
  const double l2 = mbb.max_y();

  // Signed accumulators, one per tile plus the combined B+N term (Fig. 10).
  std::array<double, kNumTiles> signed_sum{};
  double signed_b_plus_n = 0.0;

  size_t input_edges = 0;
  size_t split_edges = 0;
  size_t trapezoid_terms = 0;  // Aggregated locally, flushed once per call.
  std::vector<ClassifiedEdge> pieces;
  for (const Polygon& polygon : primary.polygons()) {
    input_edges += polygon.size();
    for (size_t i = 0; i < polygon.size(); ++i) {
      pieces.clear();
      split_edges += static_cast<size_t>(
          SplitAndClassifyEdge(polygon.edge(i), mbb, &pieces));
      for (const ClassifiedEdge& piece : pieces) {
        const Segment& s = piece.segment;
        if (piece.tile != Tile::kB) ++trapezoid_terms;
        switch (piece.tile) {
          case Tile::kNW:
          case Tile::kW:
          case Tile::kSW:
            signed_sum[static_cast<int>(piece.tile)] +=
                TrapezoidVertical(s, m1);
            break;
          case Tile::kNE:
          case Tile::kE:
          case Tile::kSE:
            signed_sum[static_cast<int>(piece.tile)] +=
                TrapezoidVertical(s, m2);
            break;
          case Tile::kS:
            signed_sum[static_cast<int>(Tile::kS)] +=
                TrapezoidHorizontal(s, l1);
            break;
          case Tile::kN:
            signed_sum[static_cast<int>(Tile::kN)] +=
                TrapezoidHorizontal(s, l2);
            break;
          case Tile::kB:
            // B has no private reference line; only the B+N accumulator
            // below sees its edges.
            break;
        }
        if (piece.tile == Tile::kN || piece.tile == Tile::kB) {
          signed_b_plus_n += TrapezoidHorizontal(s, l1);
          ++trapezoid_terms;
        }
      }
    }
  }
  CARDIR_METRIC_COUNT("core.percent.runs", 1);
  CARDIR_METRIC_COUNT("core.edges.input", input_edges);
  CARDIR_METRIC_COUNT("core.edges.split", split_edges);
  CARDIR_METRIC_COUNT("core.percent.trapezoid_terms", trapezoid_terms);

  CdrPercentComputation result;
  for (Tile t : kAllTiles) {
    result.tile_areas[static_cast<int>(t)] =
        std::abs(signed_sum[static_cast<int>(t)]);
  }
  // a_B = |a_{B+N}| − |a_N|. When a barely (or never) enters B the two
  // accumulators are large and near-equal, leaving an O(ulp) cancellation
  // residue of either sign; treating anything within floating-point noise
  // of the accumulators as exact zero keeps measure-zero B contacts from
  // surfacing as a spurious positive percentage.
  const double area_n = result.tile_areas[static_cast<int>(Tile::kN)];
  const double area_b = std::abs(signed_b_plus_n) - area_n;
  const double noise =
      1e-12 * std::max(std::abs(signed_b_plus_n), area_n);
  result.tile_areas[static_cast<int>(Tile::kB)] =
      area_b <= noise ? 0.0 : area_b;

  for (double area : result.tile_areas) result.total_area += area;
  result.matrix = PercentageMatrix::FromAreas(result.tile_areas);

  // Audit seam: the accumulated tile areas must reproduce the region's
  // shoelace area, the matrix must be a valid percentage distribution, and
  // Definition 4's trapezoid totals must telescope per ring.
  if constexpr (kAuditEnabled) {
    CARDIR_AUDIT(AuditTileAreasMatchRegion(result.tile_areas,
                                           result.total_area, primary));
    CARDIR_AUDIT(AuditPercentMatrix(result.matrix));
    for (const Polygon& polygon : primary.polygons()) {
      CARDIR_AUDIT(AuditTrapezoidTotals(polygon));
    }
  }
  return result;
}

Result<CdrPercentComputation> ComputeCdrPercentDetailed(
    const Region& primary, const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  CdrPercentComputation computation =
      ComputeCdrPercentUnchecked(primary, reference);
  // Audit seam: tiles holding a positive share of a's area must be tiles
  // of the qualitative Compute-CDR relation (§3.2 refines §3.1).
  if constexpr (kAuditEnabled) {
    CARDIR_AUDIT(AuditQualQuantAgreement(
        ComputeCdrUnchecked(primary, reference).relation, computation.matrix));
  }
  return computation;
}

Result<PercentageMatrix> ComputeCdrPercent(const Region& primary,
                                           const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrPercentComputation computation,
                          ComputeCdrPercentDetailed(primary, reference));
  return computation.matrix;
}

}  // namespace cardir
