#include "core/edge_soa.h"

#include <algorithm>

#include "core/edge_split_detail.h"
#include "core/edge_splitter.h"
#include "geometry/segment.h"
#include "obs/memstats.h"
#include "util/logging.h"
#include "util/target_clones.h"

namespace cardir {
namespace {

constexpr std::array<uint16_t, kNumSubEdgeCodes> BuildSubEdgeCodeMasks() {
  std::array<uint16_t, kNumSubEdgeCodes> masks{};
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      const Tile tile =
          TileAt(static_cast<TileColumn>(c), static_cast<TileRow>(r));
      masks[SubEdgeCode(static_cast<TileColumn>(c), static_cast<TileRow>(r))] =
          static_cast<uint16_t>(1u << static_cast<int>(tile));
    }
  }
  return masks;
}

constexpr std::array<Tile, kNumSubEdgeCodes> BuildSubEdgeCodeTiles() {
  std::array<Tile, kNumSubEdgeCodes> tiles{};
  tiles.fill(Tile::kB);
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      tiles[SubEdgeCode(static_cast<TileColumn>(c), static_cast<TileRow>(r))] =
          TileAt(static_cast<TileColumn>(c), static_cast<TileRow>(r));
    }
  }
  return tiles;
}

constexpr std::array<uint16_t, kNumSubEdgeCodes> kSubEdgeCodeMasks =
    BuildSubEdgeCodeMasks();
constexpr std::array<Tile, kNumSubEdgeCodes> kSubEdgeCodeTiles =
    BuildSubEdgeCodeTiles();

// Compile-time proof over all 16 sub-edge codes, both orientations:
// forward, every reachable (column << 2) | row code carries exactly the
// single-tile mask and the tile of TileAt(column, row), and the six
// unreachable code values carry mask 0 / the kB placeholder; backward,
// every tile's own column/row — the pair the scalar classifier produces —
// packs to a code whose table entries recover that tile. A divergence
// between these tables and core/tile.h's grid is a build break, not a
// startup abort (ctest's differential tests remain as the runtime
// cross-check of the *classifiers* that produce the codes).
constexpr bool SubEdgeTablesAgreeWithTileAt() {
  bool reachable[kNumSubEdgeCodes] = {};
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      const Tile tile =
          TileAt(static_cast<TileColumn>(c), static_cast<TileRow>(r));
      const uint8_t code =
          SubEdgeCode(static_cast<TileColumn>(c), static_cast<TileRow>(r));
      reachable[code] = true;
      if (kSubEdgeCodeMasks[code] !=
          static_cast<uint16_t>(1u << static_cast<int>(tile))) {
        return false;
      }
      if (kSubEdgeCodeTiles[code] != tile) return false;
    }
  }
  for (int code = 0; code < kNumSubEdgeCodes; ++code) {
    if (reachable[code]) continue;
    if (kSubEdgeCodeMasks[code] != 0) return false;
    if (kSubEdgeCodeTiles[code] != Tile::kB) return false;
  }
  for (Tile tile : kAllTiles) {
    const uint8_t code = SubEdgeCode(ColumnOf(tile), RowOf(tile));
    if (kSubEdgeCodeTiles[code] != tile) return false;
    if (kSubEdgeCodeMasks[code] !=
        static_cast<uint16_t>(1u << static_cast<int>(tile))) {
      return false;
    }
  }
  return true;
}
static_assert(SubEdgeTablesAgreeWithTileAt(),
              "core/edge_soa: sub-edge code tables disagree with "
              "core/tile.h's TileAt");

// Branch-free classification of one lane along one axis. Returns the axis
// class (0 = low/west/south, 1 = middle, 2 = high/east/north) assuming the
// lane is NOT exactly on a band line, and ORs a fallback flag into *odd
// when that assumption fails:
//
//  * a tie — the lane lies exactly ON a line (lo==hi==m1 or m2, or the
//    band is degenerate), where the scalar classifier breaks towards the
//    polygon's interior side using the ring direction;
//  * a residual floating-point straddle (none of low/mid/high holds),
//    which the scalar cascade resolves by the larger part.
//
// Both are measure-zero for random workloads and the second is outright
// unreachable for splitter output (split points are snapped exactly onto
// the lines), so the kernel keeps the hot lane to three compares and a
// handful of integer ops and the caller re-classifies the whole batch
// through the exact scalar cascade when *odd comes back non-zero. That
// trades a rare O(n) scalar pass for dropping the tie-break arithmetic —
// and the cross-axis direction loads it needs — from every hot lane.
inline unsigned ClassifyAxisLane(double lo, double hi, double m1, double m2,
                                 unsigned* odd) {
  const unsigned low = static_cast<unsigned>(hi <= m1);
  const unsigned high = static_cast<unsigned>(lo >= m2);
  const unsigned mid = static_cast<unsigned>(lo >= m1) &
                       static_cast<unsigned>(hi <= m2);
  // Tie: two predicates hold at once. Straddle: none does.
  *odd |= (mid & (low | high)) | (low & high) | (1u - (low | high | mid));
  return 2u * high + mid;
}

// Exact scalar re-classification of lanes [begin, soa->count): the
// fallback for batches containing a lane exactly ON a band line (tie,
// broken towards the polygon's interior side by the ring direction) or
// hitting the defensive residual-straddle case. Returns the codes-present
// bitmap of the range.
uint16_t ReclassifyScalarRange(EdgeSoA* soa, const Box& mbb, size_t begin) {
  uint16_t bitmap = 0;
  for (size_t i = begin; i < soa->count; ++i) {
    const Segment piece(Point{soa->x0[i], soa->y0[i]},
                        Point{soa->x1[i], soa->y1[i]});
    const Tile tile = ClassifySubEdge(piece, mbb);
    const uint8_t code = SubEdgeCode(ColumnOf(tile), RowOf(tile));
    soa->code[i] = code;
    bitmap = static_cast<uint16_t>(bitmap | (1u << code));
  }
  return bitmap;
}

// Fused column+row pass. Writes each lane's code byte exactly once,
// accumulates the OR of `1 << code` across lanes (the "codes present"
// bitmap the qualitative path folds into a relation mask without a second
// pass over the lanes), and returns it with the fallback flag in bit 16.
// Per-pair batches are small (~a dozen lanes for a 10-gon), so one pass
// over four double arrays with a single byte store per lane matters as
// much as the vector width.
CARDIR_KERNEL_CLONES
uint32_t ClassifySubEdgesSoAImpl(const double* x0, const double* y0,
                                 const double* x1, const double* y1, size_t n,
                                 const Box& mbb, uint8_t* codes) {
  const double m1 = mbb.min_x();
  const double m2 = mbb.max_x();
  const double l1 = mbb.min_y();
  const double l2 = mbb.max_y();
  unsigned odd = 0;
  unsigned bitmap = 0;
  for (size_t i = 0; i < n; ++i) {
    const double xa = x0[i];
    const double xb = x1[i];
    const double ya = y0[i];
    const double yb = y1[i];
    const unsigned col =
        ClassifyAxisLane(std::min(xa, xb), std::max(xa, xb), m1, m2, &odd);
    const unsigned row =
        ClassifyAxisLane(std::min(ya, yb), std::max(ya, yb), l1, l2, &odd);
    const unsigned code = (col << 2) | row;
    codes[i] = static_cast<uint8_t>(code);
    bitmap |= 1u << code;
  }
  return bitmap | (odd != 0 ? 1u << 16 : 0u);
}

}  // namespace

EdgeSoA::~EdgeSoA() {
  if (x0.empty()) return;
  CARDIR_MEMSTAT_FREE("edge_soa", LaneBytes());
}

void EdgeSoA::EnsureCapacity(size_t lanes) {
  if (x0.size() >= lanes) return;
  const size_t capacity = std::max(lanes, x0.size() * 2);
  CARDIR_MEMSTAT_ALLOC("edge_soa", (capacity - x0.size()) *
                                       (4 * sizeof(double) + sizeof(uint8_t)));
  x0.resize(capacity);
  y0.resize(capacity);
  x1.resize(capacity);
  y1.resize(capacity);
  code.resize(capacity);
}

const std::array<uint16_t, kNumSubEdgeCodes>& SubEdgeCodeMasks() {
  return kSubEdgeCodeMasks;
}

const std::array<Tile, kNumSubEdgeCodes>& SubEdgeCodeTiles() {
  return kSubEdgeCodeTiles;
}

size_t AppendSplitEdgesSoA(const Polygon& polygon, const Box& mbb,
                           EdgeSoA* soa) {
  CARDIR_DCHECK(soa != nullptr);
  const size_t n = polygon.size();
  // At most 5 pieces per edge (4 crossing points), so one grow covers the
  // whole polygon and the emit lambda writes through raw pointers.
  soa->EnsureCapacity(soa->count + 5 * n);
  double* x0 = soa->x0.data();
  double* y0 = soa->y0.data();
  double* x1 = soa->x1.data();
  double* y1 = soa->y1.data();
  size_t k = soa->count;
  // Walk the ring directly (vertex i → i+1, closing edge last) instead of
  // Polygon::edge(i), whose wrap-around `% size()` costs an integer divide
  // per edge — measurable at ~14 lanes per crossing pair.
  const Point* v = polygon.vertices().data();
  const auto emit = [&](const Point& pa, const Point& pb) {
    x0[k] = pa.x;
    y0[k] = pa.y;
    x1[k] = pb.x;
    y1[k] = pb.y;
    ++k;
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    edge_split_detail::ForEachSplitPiece(Segment(v[i], v[i + 1]), mbb, emit);
  }
  if (n >= 2) {
    edge_split_detail::ForEachSplitPiece(Segment(v[n - 1], v[0]), mbb, emit);
  }
  const size_t appended = k - soa->count;
  soa->count = k;
  return appended;
}

uint16_t ClassifySubEdgesSoA(EdgeSoA* soa, const Box& mbb) {
  CARDIR_DCHECK(soa != nullptr);
  CARDIR_DCHECK(!mbb.IsEmpty());
  const size_t n = soa->count;
  if (n == 0) return 0;
  const uint32_t result =
      ClassifySubEdgesSoAImpl(soa->x0.data(), soa->y0.data(), soa->x1.data(),
                              soa->y1.data(), n, mbb, soa->code.data());
  if ((result & (1u << 16)) == 0) return static_cast<uint16_t>(result);
  // A lane lies exactly on a band line (tie, broken towards the polygon's
  // interior side) or hit the defensive residual-straddle case: the batch
  // kernel's no-tie classes are unreliable for such lanes, so re-classify
  // the whole batch through the exact scalar cascade. Rare by construction
  // (requires geometry exactly on the reference mbb lines or a degenerate
  // reference band), so the qualitative and percent paths stay hot-loop
  // simple while degenerate corpora keep bit-exact scalar semantics.
  return ReclassifyScalarRange(soa, mbb, 0);
}

SplitClassifyResult AppendSplitClassifySoA(const Polygon& polygon,
                                           const Box& mbb, EdgeSoA* soa) {
  CARDIR_DCHECK(soa != nullptr);
  CARDIR_DCHECK(!mbb.IsEmpty());
  const size_t n = polygon.size();
  soa->EnsureCapacity(soa->count + 5 * n);
  double* x0 = soa->x0.data();
  double* y0 = soa->y0.data();
  double* x1 = soa->x1.data();
  double* y1 = soa->y1.data();
  uint8_t* codes = soa->code.data();
  const size_t begin = soa->count;
  const double m1 = mbb.min_x();
  const double m2 = mbb.max_x();
  const double l1 = mbb.min_y();
  const double l2 = mbb.max_y();

  size_t k = begin;
  unsigned bitmap = 0;
  unsigned odd = 0;
  // Emitter for pieces of a straddling edge: store the lane, classify it
  // from its own extent (pieces are short, their min/max is fresh work
  // either way), fold its code bit.
  const auto classify_emit = [&](const Point& pa, const Point& pb) {
    x0[k] = pa.x;
    y0[k] = pa.y;
    x1[k] = pb.x;
    y1[k] = pb.y;
    const unsigned col = ClassifyAxisLane(std::min(pa.x, pb.x),
                                          std::max(pa.x, pb.x), m1, m2, &odd);
    const unsigned row = ClassifyAxisLane(std::min(pa.y, pb.y),
                                          std::max(pa.y, pb.y), l1, l2, &odd);
    const unsigned code = (col << 2) | row;
    codes[k] = static_cast<uint8_t>(code);
    bitmap |= 1u << code;
    ++k;
  };
  const auto do_edge = [&](const Point& a, const Point& b) {
    if (a == b) return;  // Degenerate edge: no pieces (shared-core rule).
    const double xlo = std::min(a.x, b.x);
    const double xhi = std::max(a.x, b.x);
    const double ylo = std::min(a.y, b.y);
    const double yhi = std::max(a.y, b.y);
    const unsigned straddle_w = static_cast<unsigned>(xlo < m1) &
                                static_cast<unsigned>(m1 < xhi);
    const unsigned straddle_e = static_cast<unsigned>(xlo < m2) &
                                static_cast<unsigned>(m2 < xhi);
    const unsigned straddle_s = static_cast<unsigned>(ylo < l1) &
                                static_cast<unsigned>(l1 < yhi);
    const unsigned straddle_n = static_cast<unsigned>(ylo < l2) &
                                static_cast<unsigned>(l2 < yhi);
    if ((straddle_w | straddle_e | straddle_s | straddle_n) == 0) {
      // Non-crossing edge: one lane, classified straight from the extents
      // the straddle test just computed.
      x0[k] = a.x;
      y0[k] = a.y;
      x1[k] = b.x;
      y1[k] = b.y;
      const unsigned col = ClassifyAxisLane(xlo, xhi, m1, m2, &odd);
      const unsigned row = ClassifyAxisLane(ylo, yhi, l1, l2, &odd);
      const unsigned code = (col << 2) | row;
      codes[k] = static_cast<uint8_t>(code);
      bitmap |= 1u << code;
      ++k;
      return;
    }
    edge_split_detail::SplitStraddlingEdge(Segment(a, b), mbb, straddle_w,
                                           straddle_e, straddle_s, straddle_n,
                                           classify_emit);
  };
  // Walk the ring directly (vertex i → i+1, closing edge last); see
  // AppendSplitEdgesSoA for why not Polygon::edge(i).
  const Point* v = polygon.vertices().data();
  for (size_t i = 0; i + 1 < n; ++i) do_edge(v[i], v[i + 1]);
  if (n >= 2) do_edge(v[n - 1], v[0]);

  soa->count = k;
  SplitClassifyResult result;
  result.pieces = k - begin;
  result.code_bitmap = odd == 0 ? static_cast<uint16_t>(bitmap)
                                : ReclassifyScalarRange(soa, mbb, begin);
  return result;
}

SplitClassifyResult SplitClassifyBitmapSoA(const Polygon& polygon,
                                           const Box& mbb,
                                           EdgeSoA* fallback_scratch) {
  CARDIR_DCHECK(fallback_scratch != nullptr);
  CARDIR_DCHECK(!mbb.IsEmpty());
  const size_t n = polygon.size();
  const double m1 = mbb.min_x();
  const double m2 = mbb.max_x();
  const double l1 = mbb.min_y();
  const double l2 = mbb.max_y();

  size_t pieces = 0;
  unsigned bitmap = 0;
  unsigned odd = 0;
  const auto classify_piece = [&](const Point& pa, const Point& pb) {
    const unsigned col = ClassifyAxisLane(std::min(pa.x, pb.x),
                                          std::max(pa.x, pb.x), m1, m2, &odd);
    const unsigned row = ClassifyAxisLane(std::min(pa.y, pb.y),
                                          std::max(pa.y, pb.y), l1, l2, &odd);
    bitmap |= 1u << ((col << 2) | row);
    ++pieces;
  };
  const auto do_edge = [&](const Point& a, const Point& b) {
    if (a == b) return;  // Degenerate edge: no pieces (shared-core rule).
    const double xlo = std::min(a.x, b.x);
    const double xhi = std::max(a.x, b.x);
    const double ylo = std::min(a.y, b.y);
    const double yhi = std::max(a.y, b.y);
    const unsigned straddle_w = static_cast<unsigned>(xlo < m1) &
                                static_cast<unsigned>(m1 < xhi);
    const unsigned straddle_e = static_cast<unsigned>(xlo < m2) &
                                static_cast<unsigned>(m2 < xhi);
    const unsigned straddle_s = static_cast<unsigned>(ylo < l1) &
                                static_cast<unsigned>(l1 < yhi);
    const unsigned straddle_n = static_cast<unsigned>(ylo < l2) &
                                static_cast<unsigned>(l2 < yhi);
    if ((straddle_w | straddle_e | straddle_s | straddle_n) == 0) {
      const unsigned col = ClassifyAxisLane(xlo, xhi, m1, m2, &odd);
      const unsigned row = ClassifyAxisLane(ylo, yhi, l1, l2, &odd);
      bitmap |= 1u << ((col << 2) | row);
      ++pieces;
      return;
    }
    edge_split_detail::SplitStraddlingEdge(Segment(a, b), mbb, straddle_w,
                                           straddle_e, straddle_s, straddle_n,
                                           classify_piece);
  };
  const Point* v = polygon.vertices().data();
  for (size_t i = 0; i + 1 < n; ++i) do_edge(v[i], v[i + 1]);
  if (n >= 2) do_edge(v[n - 1], v[0]);

  SplitClassifyResult result;
  result.pieces = pieces;
  if (odd == 0) {
    result.code_bitmap = static_cast<uint16_t>(bitmap);
    return result;
  }
  // Tie/straddle fallback: materialise the pieces after all and reuse the
  // appending variant, whose own fallback is the exact scalar cascade.
  fallback_scratch->Clear();
  return AppendSplitClassifySoA(polygon, mbb, fallback_scratch);
}

}  // namespace cardir
