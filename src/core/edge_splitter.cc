#include "core/edge_splitter.h"

#include <algorithm>

#include "core/edge_split_detail.h"
#include "util/logging.h"

// Sub-edge extents arrive snapped exactly onto the tile lines
// (edge_split_detail.h), so `lo == m1`-style on-line classification is
// exact by contract — the paper's boundary semantics depend on it.
// cardir-analyzer: allow-file(float-eq): split points are snapped exactly onto tile lines

namespace cardir {
namespace {

// Column of a sub-edge that does not properly cross x = m1 or x = m2.
// `dir_y` is the y-component of the edge direction, used only to resolve
// segments lying exactly on a line: for a clockwise ring the interior is to
// the right of the direction, so a vertical segment going up (dir_y > 0) has
// the interior on its east side.
TileColumn ClassifyColumn(double lo, double hi, double dir_y, double m1,
                          double m2) {
  if (hi < m1) return TileColumn::kWest;
  if (lo > m2) return TileColumn::kEast;
  if (lo == hi && lo == m1 && m1 == m2) {
    // Degenerate mbb (zero width) with the segment on the only line.
    return dir_y > 0 ? TileColumn::kEast : TileColumn::kWest;
  }
  if (hi == m1) {
    if (lo < m1) return TileColumn::kWest;  // Touches the line from the west.
    // Segment lies on x = m1: interior side decides W vs middle.
    return dir_y > 0 ? TileColumn::kMiddle : TileColumn::kWest;
  }
  if (lo == m2) {
    if (hi > m2) return TileColumn::kEast;
    // Segment lies on x = m2.
    return dir_y > 0 ? TileColumn::kEast : TileColumn::kMiddle;
  }
  if (lo >= m1 && hi <= m2) return TileColumn::kMiddle;
  // Defensive: a residual floating-point straddle (split points are snapped
  // onto the lines, so this should not occur). Classify by the larger part.
  if (lo < m1) return (m1 - lo > hi - m1) ? TileColumn::kWest
                                          : TileColumn::kMiddle;
  return (hi - m2 > m2 - lo) ? TileColumn::kEast : TileColumn::kMiddle;
}

// Row counterpart; `dir_x` resolves horizontal segments lying on y = l1 or
// y = l2 (clockwise: going east (dir_x > 0) keeps the interior to the south).
TileRow ClassifyRow(double lo, double hi, double dir_x, double l1, double l2) {
  if (hi < l1) return TileRow::kSouth;
  if (lo > l2) return TileRow::kNorth;
  if (lo == hi && lo == l1 && l1 == l2) {
    return dir_x > 0 ? TileRow::kSouth : TileRow::kNorth;
  }
  if (hi == l1) {
    if (lo < l1) return TileRow::kSouth;
    return dir_x > 0 ? TileRow::kSouth : TileRow::kMiddle;
  }
  if (lo == l2) {
    if (hi > l2) return TileRow::kNorth;
    return dir_x > 0 ? TileRow::kMiddle : TileRow::kNorth;
  }
  if (lo >= l1 && hi <= l2) return TileRow::kMiddle;
  if (lo < l1) return (l1 - lo > hi - l1) ? TileRow::kSouth : TileRow::kMiddle;
  return (hi - l2 > l2 - lo) ? TileRow::kNorth : TileRow::kMiddle;
}

}  // namespace

Tile ClassifySubEdge(const Segment& segment, const Box& mbb) {
  CARDIR_DCHECK(!mbb.IsEmpty());
  const Point dir = segment.Direction();
  const TileColumn column = ClassifyColumn(
      std::min(segment.a.x, segment.b.x), std::max(segment.a.x, segment.b.x),
      dir.y, mbb.min_x(), mbb.max_x());
  const TileRow row = ClassifyRow(std::min(segment.a.y, segment.b.y),
                                  std::max(segment.a.y, segment.b.y), dir.x,
                                  mbb.min_y(), mbb.max_y());
  return TileAt(column, row);
}

int SplitAndClassifyEdge(const Segment& edge, const Box& mbb,
                         std::vector<ClassifiedEdge>* out) {
  CARDIR_DCHECK(out != nullptr);
  return edge_split_detail::ForEachSplitPiece(
      edge, mbb, [&](const Point& start, const Point& end) {
        const Segment piece(start, end);
        out->push_back({piece, ClassifySubEdge(piece, mbb)});
      });
}

}  // namespace cardir
