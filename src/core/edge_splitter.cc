#include "core/edge_splitter.h"

#include <algorithm>
#include <array>

#include "util/logging.h"

namespace cardir {
namespace {

// Column of a sub-edge that does not properly cross x = m1 or x = m2.
// `dir_y` is the y-component of the edge direction, used only to resolve
// segments lying exactly on a line: for a clockwise ring the interior is to
// the right of the direction, so a vertical segment going up (dir_y > 0) has
// the interior on its east side.
TileColumn ClassifyColumn(double lo, double hi, double dir_y, double m1,
                          double m2) {
  if (hi < m1) return TileColumn::kWest;
  if (lo > m2) return TileColumn::kEast;
  if (lo == hi && lo == m1 && m1 == m2) {
    // Degenerate mbb (zero width) with the segment on the only line.
    return dir_y > 0 ? TileColumn::kEast : TileColumn::kWest;
  }
  if (hi == m1) {
    if (lo < m1) return TileColumn::kWest;  // Touches the line from the west.
    // Segment lies on x = m1: interior side decides W vs middle.
    return dir_y > 0 ? TileColumn::kMiddle : TileColumn::kWest;
  }
  if (lo == m2) {
    if (hi > m2) return TileColumn::kEast;
    // Segment lies on x = m2.
    return dir_y > 0 ? TileColumn::kEast : TileColumn::kMiddle;
  }
  if (lo >= m1 && hi <= m2) return TileColumn::kMiddle;
  // Defensive: a residual floating-point straddle (split points are snapped
  // onto the lines, so this should not occur). Classify by the larger part.
  if (lo < m1) return (m1 - lo > hi - m1) ? TileColumn::kWest
                                          : TileColumn::kMiddle;
  return (hi - m2 > m2 - lo) ? TileColumn::kEast : TileColumn::kMiddle;
}

// Row counterpart; `dir_x` resolves horizontal segments lying on y = l1 or
// y = l2 (clockwise: going east (dir_x > 0) keeps the interior to the south).
TileRow ClassifyRow(double lo, double hi, double dir_x, double l1, double l2) {
  if (hi < l1) return TileRow::kSouth;
  if (lo > l2) return TileRow::kNorth;
  if (lo == hi && lo == l1 && l1 == l2) {
    return dir_x > 0 ? TileRow::kSouth : TileRow::kNorth;
  }
  if (hi == l1) {
    if (lo < l1) return TileRow::kSouth;
    return dir_x > 0 ? TileRow::kSouth : TileRow::kMiddle;
  }
  if (lo == l2) {
    if (hi > l2) return TileRow::kNorth;
    return dir_x > 0 ? TileRow::kMiddle : TileRow::kNorth;
  }
  if (lo >= l1 && hi <= l2) return TileRow::kMiddle;
  if (lo < l1) return (l1 - lo > hi - l1) ? TileRow::kSouth : TileRow::kMiddle;
  return (hi - l2 > l2 - lo) ? TileRow::kNorth : TileRow::kMiddle;
}

// Which mbb line a crossing parameter came from (for coordinate snapping).
enum class CrossedLine { kWest, kEast, kSouth, kNorth };

struct Crossing {
  double t;
  CrossedLine line;
};

}  // namespace

Tile ClassifySubEdge(const Segment& segment, const Box& mbb) {
  CARDIR_DCHECK(!mbb.IsEmpty());
  const Point dir = segment.Direction();
  const TileColumn column = ClassifyColumn(
      std::min(segment.a.x, segment.b.x), std::max(segment.a.x, segment.b.x),
      dir.y, mbb.min_x(), mbb.max_x());
  const TileRow row = ClassifyRow(std::min(segment.a.y, segment.b.y),
                                  std::max(segment.a.y, segment.b.y), dir.x,
                                  mbb.min_y(), mbb.max_y());
  return TileAt(column, row);
}

int SplitAndClassifyEdge(const Segment& edge, const Box& mbb,
                         std::vector<ClassifiedEdge>* out) {
  CARDIR_DCHECK(out != nullptr);
  if (edge.IsDegenerate()) return 0;

  // Parameters in (0,1) of proper crossings with the four mbb lines.
  std::array<Crossing, 4> crossings;
  int crossing_count = 0;
  auto add = [&crossings, &crossing_count](std::optional<double> t,
                                           CrossedLine line) {
    if (t.has_value()) crossings[crossing_count++] = {*t, line};
  };
  add(CrossVerticalLine(edge, mbb.min_x()), CrossedLine::kWest);
  if (mbb.max_x() != mbb.min_x()) {
    add(CrossVerticalLine(edge, mbb.max_x()), CrossedLine::kEast);
  }
  add(CrossHorizontalLine(edge, mbb.min_y()), CrossedLine::kSouth);
  if (mbb.max_y() != mbb.min_y()) {
    add(CrossHorizontalLine(edge, mbb.max_y()), CrossedLine::kNorth);
  }
  // Insertion sort: at most 4 elements, and gcc 12's std::sort trips a
  // -Warray-bounds false positive on partial std::array ranges.
  for (int i = 1; i < crossing_count; ++i) {
    const Crossing key = crossings[static_cast<size_t>(i)];
    int j = i - 1;
    while (j >= 0 && crossings[static_cast<size_t>(j)].t > key.t) {
      crossings[static_cast<size_t>(j + 1)] = crossings[static_cast<size_t>(j)];
      --j;
    }
    crossings[static_cast<size_t>(j + 1)] = key;
  }

  // Snap each split point's coordinate exactly onto the line(s) it crosses,
  // so sub-edge extents compare exactly against the mbb bounds.
  auto snapped_point = [&](int index) {
    Point p = edge.At(crossings[index].t);
    const double t = crossings[index].t;
    for (int j = 0; j < crossing_count; ++j) {
      if (crossings[j].t != t) continue;
      switch (crossings[j].line) {
        case CrossedLine::kWest: p.x = mbb.min_x(); break;
        case CrossedLine::kEast: p.x = mbb.max_x(); break;
        case CrossedLine::kSouth: p.y = mbb.min_y(); break;
        case CrossedLine::kNorth: p.y = mbb.max_y(); break;
      }
    }
    return p;
  };

  int emitted = 0;
  Point start = edge.a;
  double prev_t = 0.0;
  for (int i = 0; i <= crossing_count; ++i) {
    Point end;
    if (i == crossing_count) {
      end = edge.b;
    } else {
      const double t = crossings[i].t;
      if (t == prev_t && i > 0) continue;  // Coincident crossing (corner).
      end = snapped_point(i);
      prev_t = t;
    }
    const Segment piece(start, end);
    if (!piece.IsDegenerate()) {
      out->push_back({piece, ClassifySubEdge(piece, mbb)});
      ++emitted;
    }
    start = end;
  }
  return emitted;
}

}  // namespace cardir
