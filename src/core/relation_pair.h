// Relation pairs (paper §2): the relative position of two regions a and b is
// fully characterised by the pair (R1, R2) with a R1 b and b R2 a.

#ifndef CARDIR_CORE_RELATION_PAIR_H_
#define CARDIR_CORE_RELATION_PAIR_H_

#include <ostream>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// The (R1, R2) pair of §2: `a_to_b` holds of (a, b) and `b_to_a` of (b, a).
struct RelationPair {
  CardinalRelation a_to_b;
  CardinalRelation b_to_a;

  friend bool operator==(const RelationPair& x, const RelationPair& y) {
    return x.a_to_b == y.a_to_b && x.b_to_a == y.b_to_a;
  }
};

/// Computes both directions with Compute-CDR. By construction the result
/// satisfies the mutual-inverse property of §2 (each component is a disjunct
/// of the inverse of the other) — asserted by the property tests against the
/// reasoning layer's Inverse().
Result<RelationPair> ComputeRelationPair(const Region& a, const Region& b);

std::ostream& operator<<(std::ostream& os, const RelationPair& pair);

}  // namespace cardir

#endif  // CARDIR_CORE_RELATION_PAIR_H_
