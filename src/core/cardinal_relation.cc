#include "core/cardinal_relation.h"

#include <bit>

#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

CardinalRelation CardinalRelation::FromMask(uint16_t mask) {
  CARDIR_CHECK((mask & ~0x1ffu) == 0) << "mask uses bits above the 9 tiles";
  CardinalRelation relation;
  relation.mask_ = mask;
  return relation;
}

Result<CardinalRelation> CardinalRelation::Parse(std::string_view text) {
  CardinalRelation relation;
  for (const std::string& piece : StrSplit(text, ':')) {
    const std::string_view name = StripWhitespace(piece);
    Tile tile;
    if (!ParseTile(name, &tile)) {
      return Status::ParseError("unknown tile name: '" + std::string(name) +
                                "'");
    }
    if (relation.Includes(tile)) {
      return Status::ParseError("duplicate tile in relation: '" +
                                std::string(name) + "'");
    }
    relation.Add(tile);
  }
  if (relation.IsEmpty()) {
    return Status::ParseError("empty cardinal direction relation");
  }
  return relation;
}

int CardinalRelation::TileCount() const { return std::popcount(mask_); }

std::vector<Tile> CardinalRelation::Tiles() const {
  std::vector<Tile> tiles;
  for (Tile t : kAllTiles) {
    if (Includes(t)) tiles.push_back(t);
  }
  return tiles;
}

std::string CardinalRelation::ToString() const {
  if (IsEmpty()) return "(empty)";
  std::string out;
  for (Tile t : Tiles()) {
    if (!out.empty()) out += ':';
    out += TileName(t);
  }
  return out;
}

std::string CardinalRelation::ToMatrixString() const {
  // Rows printed north to south, columns west to east, as in the paper's
  // direction-relation matrices.
  static constexpr Tile kLayout[3][3] = {
      {Tile::kNW, Tile::kN, Tile::kNE},
      {Tile::kW, Tile::kB, Tile::kE},
      {Tile::kSW, Tile::kS, Tile::kSE},
  };
  std::string out;
  for (int r = 0; r < 3; ++r) {
    out += '[';
    for (int c = 0; c < 3; ++c) {
      out += Includes(kLayout[r][c]) ? '#' : '.';
      if (c < 2) out += ' ';
    }
    out += ']';
    if (r < 2) out += '\n';
  }
  return out;
}

CardinalRelation TileUnion(const std::vector<CardinalRelation>& relations) {
  CardinalRelation out;
  for (const CardinalRelation& r : relations) out = out.Union(r);
  return out;
}

std::ostream& operator<<(std::ostream& os, const CardinalRelation& relation) {
  return os << relation.ToString();
}

}  // namespace cardir
