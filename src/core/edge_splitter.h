// Edge division at the reference mbb lines (paper §3.1).
//
// For every edge AB of the primary region, the set I of intersection points
// of AB with the four lines of mbb(b) divides AB into segments
// A O1, ..., Ok B such that every segment lies in exactly one (closed) tile
// of b (Example 3 / Fig. 4b). Replacing AB by these segments does not change
// the region; the tile of each segment is then read off its position.
//
// Robustness notes (doubles, no epsilons):
//  * only *proper* crossings split an edge (touching a line at an endpoint
//    or running along it produces no split — Definition 3's "does not
//    cross");
//  * a sub-edge is classified by the interval position of its x/y extent
//    relative to the mbb lines, not by floating-point midpoints;
//  * a sub-edge lying exactly ON an mbb line belongs to two closed tiles;
//    we resolve to the tile on the polygon's *interior* side (clockwise
//    rings keep the interior to the right), so regions that merely touch a
//    line never report a spurious tile — matching Definition 1, where every
//    piece a_i is a REG* region with positive area.

#ifndef CARDIR_CORE_EDGE_SPLITTER_H_
#define CARDIR_CORE_EDGE_SPLITTER_H_

#include <vector>

#include "core/tile.h"
#include "geometry/box.h"
#include "geometry/segment.h"

namespace cardir {

/// One sub-edge produced by the division, together with the unique tile it
/// lies in.
struct ClassifiedEdge {
  Segment segment;
  Tile tile;
};

/// Splits `edge` at its proper crossings with the four mbb lines and
/// classifies every resulting sub-edge. Degenerate (zero-length) inputs
/// produce no output. Appends to `*out` and returns the number of sub-edges
/// appended (≤ 5: at most 4 crossing points).
///
/// `edge` must be traversed in the polygon's clockwise ring order; the
/// interior-to-the-right convention resolves sub-edges lying exactly on an
/// mbb line.
int SplitAndClassifyEdge(const Segment& edge, const Box& mbb,
                         std::vector<ClassifiedEdge>* out);

/// Classifies a segment known not to properly cross any mbb line (e.g. an
/// output of SplitAndClassifyEdge). Exposed for tests.
Tile ClassifySubEdge(const Segment& segment, const Box& mbb);

}  // namespace cardir

#endif  // CARDIR_CORE_EDGE_SPLITTER_H_
