// Shared core of the edge division at the reference mbb lines (paper §3.1):
// a header-only template that computes the proper crossings of one directed
// edge with the four mbb lines, snaps the split points exactly onto the
// lines they cross, and hands every non-degenerate piece to an emitter.
//
// Two instantiations exist: the classic AoS API of core/edge_splitter.h
// (one `ClassifiedEdge` per piece, classified immediately) and the SoA
// emitter of core/edge_soa.h (endpoint lanes appended contiguously,
// classified later in a batched branch-free pass). Keeping the crossing /
// sorting / snapping logic in one template is what guarantees the two
// pipelines emit bit-identical piece sets — the SoA differential tests
// (tests/core/edge_soa_test.cc) then only have to pin the classification.

#ifndef CARDIR_CORE_EDGE_SPLIT_DETAIL_H_
#define CARDIR_CORE_EDGE_SPLIT_DETAIL_H_

#include <algorithm>
#include <array>

#include "geometry/box.h"

// Crossing parameters and snapped coordinates are compared exactly on
// purpose: coincident-crossing dedupe and degenerate-mbb guards operate
// on values computed from identical expressions, never on independently
// rounded results.
// cardir-analyzer: allow-file(float-eq): exact dedupe/degeneracy guards on identically-computed values
#include "geometry/segment.h"

namespace cardir {
namespace edge_split_detail {

// Which mbb line a crossing parameter came from (for coordinate snapping).
enum class CrossedLine { kWest, kEast, kSouth, kNorth };

struct Crossing {
  double t;
  CrossedLine line;
};

/// Splits an edge known to strictly straddle at least one mbb line (the
/// per-line straddle flags are the caller's, so a fused caller that already
/// computed the edge extent pays for them once) and calls
/// `emit(start, end)` for every non-degenerate piece in traversal order.
/// Returns the number of pieces emitted (≥ 2 would be expected, but corner
/// crossings can merge; ≤ 5: at most 4 crossing points).
template <typename Emit>
int SplitStraddlingEdge(const Segment& edge, const Box& mbb,
                        unsigned straddle_w, unsigned straddle_e,
                        unsigned straddle_s, unsigned straddle_n,
                        Emit&& emit) {
  // Parameters in (0,1) of proper crossings with the four mbb lines. A
  // straddling extent guarantees a non-zero delta along that axis, so t is
  // the plain proper-crossing parameter of CrossVerticalLine /
  // CrossHorizontalLine without the optional wrapper. A degenerate band
  // (max == min) straddles both of its lines with the same parameter; the
  // east/north twins are skipped so the crossing is recorded once.
  std::array<Crossing, 4> crossings;
  int crossing_count = 0;
  auto add = [&crossings, &crossing_count](double t, CrossedLine line) {
    crossings[static_cast<size_t>(crossing_count++)] = Crossing{t, line};
  };
  if (straddle_w != 0) {
    add((mbb.min_x() - edge.a.x) / (edge.b.x - edge.a.x), CrossedLine::kWest);
  }
  if (straddle_e != 0 && mbb.max_x() != mbb.min_x()) {
    add((mbb.max_x() - edge.a.x) / (edge.b.x - edge.a.x), CrossedLine::kEast);
  }
  if (straddle_s != 0) {
    add((mbb.min_y() - edge.a.y) / (edge.b.y - edge.a.y), CrossedLine::kSouth);
  }
  if (straddle_n != 0 && mbb.max_y() != mbb.min_y()) {
    add((mbb.max_y() - edge.a.y) / (edge.b.y - edge.a.y), CrossedLine::kNorth);
  }
  // Insertion sort: at most 4 elements, and gcc 12's std::sort trips a
  // -Warray-bounds false positive on partial std::array ranges.
  for (int i = 1; i < crossing_count; ++i) {
    const Crossing key = crossings[static_cast<size_t>(i)];
    int j = i - 1;
    while (j >= 0 && crossings[static_cast<size_t>(j)].t > key.t) {
      crossings[static_cast<size_t>(j + 1)] = crossings[static_cast<size_t>(j)];
      --j;
    }
    crossings[static_cast<size_t>(j + 1)] = key;
  }

  // Snap each split point's coordinate exactly onto the line(s) it crosses,
  // so sub-edge extents compare exactly against the mbb bounds.
  auto snapped_point = [&](int index) {
    Point p = edge.At(crossings[static_cast<size_t>(index)].t);
    const double t = crossings[static_cast<size_t>(index)].t;
    for (int j = 0; j < crossing_count; ++j) {
      if (crossings[static_cast<size_t>(j)].t != t) continue;
      switch (crossings[static_cast<size_t>(j)].line) {
        case CrossedLine::kWest: p.x = mbb.min_x(); break;
        case CrossedLine::kEast: p.x = mbb.max_x(); break;
        case CrossedLine::kSouth: p.y = mbb.min_y(); break;
        case CrossedLine::kNorth: p.y = mbb.max_y(); break;
      }
    }
    return p;
  };

  int emitted = 0;
  Point start = edge.a;
  double prev_t = 0.0;
  for (int i = 0; i <= crossing_count; ++i) {
    Point end;
    if (i == crossing_count) {
      end = edge.b;
    } else {
      const double t = crossings[static_cast<size_t>(i)].t;
      if (t == prev_t && i > 0) continue;  // Coincident crossing (corner).
      end = snapped_point(i);
      prev_t = t;
    }
    if (!(start == end)) {
      emit(start, end);
      ++emitted;
    }
    start = end;
  }
  return emitted;
}

/// Splits `edge` at its proper crossings with the four lines of `mbb` and
/// calls `emit(start, end)` for every non-degenerate piece, in traversal
/// order. Degenerate (zero-length) input edges emit nothing. Returns the
/// number of pieces emitted (≤ 5: at most 4 crossing points).
template <typename Emit>
int ForEachSplitPiece(const Segment& edge, const Box& mbb, Emit&& emit) {
  if (edge.IsDegenerate()) return 0;

  // Strict-straddle flags against the four mbb lines, computed branch-free
  // (crossing-pair edges are a ~30/70 mix, so a short-circuit chain here
  // mispredicts constantly). An edge whose extent does not strictly
  // straddle any line cannot properly cross one (a proper crossing requires
  // endpoints strictly on opposite sides), so it is a single piece — the
  // fast path skips the divisions, the sort and the snapping for the
  // majority even of a crossing pair's edges.
  const double xlo = std::min(edge.a.x, edge.b.x);
  const double xhi = std::max(edge.a.x, edge.b.x);
  const double ylo = std::min(edge.a.y, edge.b.y);
  const double yhi = std::max(edge.a.y, edge.b.y);
  const unsigned straddle_w = static_cast<unsigned>(xlo < mbb.min_x()) &
                              static_cast<unsigned>(mbb.min_x() < xhi);
  const unsigned straddle_e = static_cast<unsigned>(xlo < mbb.max_x()) &
                              static_cast<unsigned>(mbb.max_x() < xhi);
  const unsigned straddle_s = static_cast<unsigned>(ylo < mbb.min_y()) &
                              static_cast<unsigned>(mbb.min_y() < yhi);
  const unsigned straddle_n = static_cast<unsigned>(ylo < mbb.max_y()) &
                              static_cast<unsigned>(mbb.max_y() < yhi);
  if ((straddle_w | straddle_e | straddle_s | straddle_n) == 0) {
    emit(edge.a, edge.b);
    return 1;
  }
  return SplitStraddlingEdge(edge, mbb, straddle_w, straddle_e, straddle_s,
                             straddle_n, emit);
}

}  // namespace edge_split_detail
}  // namespace cardir

#endif  // CARDIR_CORE_EDGE_SPLIT_DETAIL_H_
