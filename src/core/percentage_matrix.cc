#include "core/percentage_matrix.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

PercentageMatrix PercentageMatrix::FromAreas(
    const std::array<double, kNumTiles>& areas) {
  double total = 0.0;
  for (double a : areas) {
    CARDIR_DCHECK(a >= 0.0) << "negative tile area";
    total += a;
  }
  PercentageMatrix matrix;
  if (total <= 0.0) return matrix;
  for (int i = 0; i < kNumTiles; ++i) {
    matrix.values_[i] = 100.0 * areas[i] / total;
  }
  return matrix;
}

double PercentageMatrix::Total() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

CardinalRelation PercentageMatrix::ToRelation(double threshold_percent) const {
  CardinalRelation relation;
  for (Tile t : kAllTiles) {
    if (at(t) > threshold_percent) relation.Add(t);
  }
  return relation;
}

std::string PercentageMatrix::ToString(int precision) const {
  static constexpr Tile kLayout[3][3] = {
      {Tile::kNW, Tile::kN, Tile::kNE},
      {Tile::kW, Tile::kB, Tile::kE},
      {Tile::kSW, Tile::kS, Tile::kSE},
  };
  std::string out;
  for (int r = 0; r < 3; ++r) {
    out += '[';
    for (int c = 0; c < 3; ++c) {
      if (c > 0) out += "  ";
      out += StrFormat("%*.*f%%", 6 + precision, precision,
                       at(kLayout[r][c]));
    }
    out += ']';
    if (r < 2) out += '\n';
  }
  return out;
}

bool PercentageMatrix::ApproxEquals(const PercentageMatrix& other,
                                    double tolerance) const {
  for (Tile t : kAllTiles) {
    if (std::abs(at(t) - other.at(t)) > tolerance) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const PercentageMatrix& matrix) {
  return os << matrix.ToString();
}

}  // namespace cardir
