// Cardinal direction relations (paper §2, Definition 1).
//
// A cardinal direction relation R1:...:Rk is a non-empty set of distinct
// tiles; there are 2^9 − 1 = 511 basic relations, forming the set D*. Basic
// relations are jointly exhaustive and pairwise disjoint. A relation is
// printed with its tiles in the canonical order B,S,SW,W,NW,N,NE,E,SE,
// separated by ':', exactly as in the paper (e.g. "B:S:W", never "W:B:S").

#ifndef CARDIR_CORE_CARDINAL_RELATION_H_
#define CARDIR_CORE_CARDINAL_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/tile.h"
#include "util/status.h"

namespace cardir {

/// A basic cardinal direction relation: a set of tiles encoded as a 9-bit
/// mask (bit i = tile with enum value i). The empty mask is *not* a valid
/// relation (Definition 1 requires k ≥ 1) but is representable so that
/// relations can be built up with `Add`/`tile-union`.
class CardinalRelation {
 public:
  /// The empty (invalid as a final answer) relation; use as an accumulator.
  constexpr CardinalRelation() = default;

  constexpr explicit CardinalRelation(Tile tile)
      : mask_(static_cast<uint16_t>(1u << static_cast<int>(tile))) {}

  CardinalRelation(std::initializer_list<Tile> tiles) {
    for (Tile t : tiles) Add(t);
  }

  /// Builds a relation directly from a 9-bit mask (bits above 8 rejected by
  /// CHECK). Used by the reasoning layer to iterate all 511 relations.
  static CardinalRelation FromMask(uint16_t mask);

  /// Parses "B:S:SW" style strings (any tile order accepted on input).
  static Result<CardinalRelation> Parse(std::string_view text);

  constexpr uint16_t mask() const { return mask_; }
  constexpr bool IsEmpty() const { return mask_ == 0; }

  /// Number of tiles (the k of Definition 1).
  int TileCount() const;

  /// Single-tile relations are those with k = 1 (Definition 1).
  bool IsSingleTile() const { return TileCount() == 1; }

  bool Includes(Tile tile) const {
    return (mask_ & (1u << static_cast<int>(tile))) != 0;
  }

  void Add(Tile tile) { mask_ |= static_cast<uint16_t>(1u << static_cast<int>(tile)); }
  void Remove(Tile tile) {
    mask_ &= static_cast<uint16_t>(~(1u << static_cast<int>(tile)));
  }

  /// tile-union of Definition 2: the relation formed by the union of the
  /// tiles of this relation and `other`.
  CardinalRelation Union(const CardinalRelation& other) const {
    return FromMask(mask_ | other.mask_);
  }

  CardinalRelation Intersection(const CardinalRelation& other) const {
    return FromMask(mask_ & other.mask_);
  }

  /// True when every tile of this relation is a tile of `other`.
  bool IsSubsetOf(const CardinalRelation& other) const {
    return (mask_ & ~other.mask_) == 0;
  }

  /// Tiles in canonical order.
  std::vector<Tile> Tiles() const;

  /// Canonical "B:S:SW" rendering ("(empty)" for the empty accumulator).
  std::string ToString() const;

  /// Goyal–Egenhofer direction-relation matrix rendering (§2): three lines
  /// of three cells, '#' for present, '.' for absent, rows north to south.
  std::string ToMatrixString() const;

  friend bool operator==(const CardinalRelation& a, const CardinalRelation& b) {
    return a.mask_ == b.mask_;
  }
  friend bool operator!=(const CardinalRelation& a, const CardinalRelation& b) {
    return a.mask_ != b.mask_;
  }
  /// Arbitrary-but-stable order so relations can key ordered containers.
  friend bool operator<(const CardinalRelation& a, const CardinalRelation& b) {
    return a.mask_ < b.mask_;
  }

 private:
  uint16_t mask_ = 0;
};

/// tile-union over a list (Definition 2).
CardinalRelation TileUnion(const std::vector<CardinalRelation>& relations);

/// Number of valid (non-empty) basic relations: 511.
inline constexpr int kNumBasicRelations = 511;

std::ostream& operator<<(std::ostream& os, const CardinalRelation& relation);

}  // namespace cardir

#endif  // CARDIR_CORE_CARDINAL_RELATION_H_
