// Cone-based (centroid) cardinal directions — the point-approximation
// school the paper's introduction contrasts with the tile model: "previous
// approaches that approximate both extended regions using points or MBB's
// [4,8,13]" and "Peuquet and Ci-Xiang [15] capture cardinal direction on
// polygons using points and MBB's approximations".
//
// Each region collapses to its area centroid; the direction of a w.r.t. b
// is the 45°-cone sector containing the centroid-difference vector. Cheap
// and total, but lossy: it cannot express multi-tile relations (Fig. 1c's
// "partly NE, partly E") and misreports surround configurations — the
// expressiveness gap quantified in tests/pointmodels/ and bench_pointmodels.

#ifndef CARDIR_POINTMODELS_CONE_DIRECTION_H_
#define CARDIR_POINTMODELS_CONE_DIRECTION_H_

#include <ostream>
#include <string_view>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// The eight cone sectors plus the degenerate coincident case.
enum class ConeDirection {
  kNorth,
  kNortheast,
  kEast,
  kSoutheast,
  kSouth,
  kSouthwest,
  kWest,
  kNorthwest,
  kSame,  ///< Coincident centroids.
};

/// Canonical short name ("N", "NE", ..., "same").
std::string_view ConeDirectionName(ConeDirection direction);

/// Sector of the vector from `from` to `to`. Sector boundaries (exact
/// multiples of 45°) belong to the counter-clockwise sector, so East covers
/// angles [-22.5°, 22.5°).
ConeDirection ConeBetweenPoints(const Point& from, const Point& to);

/// Cone direction of region a w.r.t. region b via area centroids (note the
/// argument order matches the tile model: the relation of a *as seen from*
/// b). Fails on invalid regions.
Result<ConeDirection> ConeBetweenRegions(const Region& a, const Region& b);

/// The single tile the cone model would report, for comparing against the
/// tile model's CardinalRelation (kSame maps to B).
Tile ConeToTile(ConeDirection direction);

/// True when the tile model's relation is *representable* by the cone
/// model: a single-tile relation whose tile matches the cone sector.
bool ConeAgreesWithRelation(ConeDirection direction,
                            const CardinalRelation& relation);

std::ostream& operator<<(std::ostream& os, ConeDirection direction);

}  // namespace cardir

#endif  // CARDIR_POINTMODELS_CONE_DIRECTION_H_
