// MBB-projection cardinal directions — the double-approximation model the
// paper's introduction contrasts with its tile model (refs [4, 8, 13, 15]):
// both regions collapse to their minimum bounding boxes, and the direction
// is read off the per-axis interval order of the two boxes.
//
// Per axis, the primary box is Before / Overlapping / After the reference
// box (positive-length overlap). The 3×3 combinations give the eight
// directions plus kMixed (overlap on both axes). This matches the
// projection-based fragment of Peuquet & Ci-Xiang [15] and Frank's
// projection model [4]; like the cone model it is total but lossy, and the
// tests quantify where it diverges from the tile model.

#ifndef CARDIR_POINTMODELS_MBB_DIRECTION_H_
#define CARDIR_POINTMODELS_MBB_DIRECTION_H_

#include <ostream>
#include <string_view>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Interval order of one axis projection: strictly before the reference's
/// projection, positive-length overlap, or strictly after.
enum class AxisOrder { kBefore, kOverlap, kAfter };

/// The MBB-projection direction of a w.r.t. b.
enum class MbbDirection {
  kNorth,
  kNortheast,
  kEast,
  kSoutheast,
  kSouth,
  kSouthwest,
  kWest,
  kNorthwest,
  kMixed,  ///< Projections overlap on both axes.
};

/// Canonical short name ("N", ..., "mixed").
std::string_view MbbDirectionName(MbbDirection direction);

/// Interval order of [a_lo, a_hi] relative to [b_lo, b_hi]; boundary touch
/// (a_hi == b_lo) counts as kBefore — zero-length overlap carries no area.
AxisOrder OrderOnAxis(double a_lo, double a_hi, double b_lo, double b_hi);

/// Direction of box a w.r.t. box b.
MbbDirection MbbBetweenBoxes(const Box& a, const Box& b);

/// Direction of region a w.r.t. region b via their bounding boxes.
Result<MbbDirection> MbbBetweenRegions(const Region& a, const Region& b);

/// True when the tile model's relation is consistent with the MBB
/// direction: every tile of the relation lies in the half-plane(s) the MBB
/// direction asserts (e.g. kNorth ⇒ only N/NW/NE tiles).
bool MbbConsistentWithRelation(MbbDirection direction,
                               const CardinalRelation& relation);

std::ostream& operator<<(std::ostream& os, MbbDirection direction);

}  // namespace cardir

#endif  // CARDIR_POINTMODELS_MBB_DIRECTION_H_
