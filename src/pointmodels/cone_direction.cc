#include "pointmodels/cone_direction.h"

#include <cmath>
#include <numbers>

namespace cardir {

std::string_view ConeDirectionName(ConeDirection direction) {
  switch (direction) {
    case ConeDirection::kNorth: return "N";
    case ConeDirection::kNortheast: return "NE";
    case ConeDirection::kEast: return "E";
    case ConeDirection::kSoutheast: return "SE";
    case ConeDirection::kSouth: return "S";
    case ConeDirection::kSouthwest: return "SW";
    case ConeDirection::kWest: return "W";
    case ConeDirection::kNorthwest: return "NW";
    case ConeDirection::kSame: return "same";
  }
  return "?";
}

ConeDirection ConeBetweenPoints(const Point& from, const Point& to) {
  const double dx = to.x - from.x;
  const double dy = to.y - from.y;
  if (dx == 0.0 && dy == 0.0) return ConeDirection::kSame;
  // Angle in [0, 360): 0 = east, counter-clockwise. Shift by half a sector
  // so each named sector is centred on its axis.
  const double degrees =
      std::fmod(std::atan2(dy, dx) * 180.0 / std::numbers::pi + 382.5, 360.0);
  static constexpr ConeDirection kSectors[8] = {
      ConeDirection::kEast,      ConeDirection::kNortheast,
      ConeDirection::kNorth,     ConeDirection::kNorthwest,
      ConeDirection::kWest,      ConeDirection::kSouthwest,
      ConeDirection::kSouth,     ConeDirection::kSoutheast};
  return kSectors[static_cast<int>(degrees / 45.0) & 7];
}

Result<ConeDirection> ConeBetweenRegions(const Region& a, const Region& b) {
  CARDIR_RETURN_IF_ERROR(a.Validate());
  CARDIR_RETURN_IF_ERROR(b.Validate());
  // Direction of a as seen from b: vector from b's centroid to a's.
  return ConeBetweenPoints(b.Centroid(), a.Centroid());
}

Tile ConeToTile(ConeDirection direction) {
  switch (direction) {
    case ConeDirection::kNorth: return Tile::kN;
    case ConeDirection::kNortheast: return Tile::kNE;
    case ConeDirection::kEast: return Tile::kE;
    case ConeDirection::kSoutheast: return Tile::kSE;
    case ConeDirection::kSouth: return Tile::kS;
    case ConeDirection::kSouthwest: return Tile::kSW;
    case ConeDirection::kWest: return Tile::kW;
    case ConeDirection::kNorthwest: return Tile::kNW;
    case ConeDirection::kSame: return Tile::kB;
  }
  return Tile::kB;
}

bool ConeAgreesWithRelation(ConeDirection direction,
                            const CardinalRelation& relation) {
  return relation.IsSingleTile() &&
         relation.Includes(ConeToTile(direction));
}

std::ostream& operator<<(std::ostream& os, ConeDirection direction) {
  return os << ConeDirectionName(direction);
}

}  // namespace cardir
