#include "pointmodels/mbb_direction.h"

namespace cardir {

std::string_view MbbDirectionName(MbbDirection direction) {
  switch (direction) {
    case MbbDirection::kNorth: return "N";
    case MbbDirection::kNortheast: return "NE";
    case MbbDirection::kEast: return "E";
    case MbbDirection::kSoutheast: return "SE";
    case MbbDirection::kSouth: return "S";
    case MbbDirection::kSouthwest: return "SW";
    case MbbDirection::kWest: return "W";
    case MbbDirection::kNorthwest: return "NW";
    case MbbDirection::kMixed: return "mixed";
  }
  return "?";
}

AxisOrder OrderOnAxis(double a_lo, double a_hi, double b_lo, double b_hi) {
  if (a_hi <= b_lo) return AxisOrder::kBefore;
  if (a_lo >= b_hi) return AxisOrder::kAfter;
  return AxisOrder::kOverlap;
}

MbbDirection MbbBetweenBoxes(const Box& a, const Box& b) {
  const AxisOrder x = OrderOnAxis(a.min_x(), a.max_x(), b.min_x(), b.max_x());
  const AxisOrder y = OrderOnAxis(a.min_y(), a.max_y(), b.min_y(), b.max_y());
  switch (y) {
    case AxisOrder::kAfter:  // North row.
      if (x == AxisOrder::kBefore) return MbbDirection::kNorthwest;
      if (x == AxisOrder::kAfter) return MbbDirection::kNortheast;
      return MbbDirection::kNorth;
    case AxisOrder::kBefore:  // South row.
      if (x == AxisOrder::kBefore) return MbbDirection::kSouthwest;
      if (x == AxisOrder::kAfter) return MbbDirection::kSoutheast;
      return MbbDirection::kSouth;
    case AxisOrder::kOverlap:
      if (x == AxisOrder::kBefore) return MbbDirection::kWest;
      if (x == AxisOrder::kAfter) return MbbDirection::kEast;
      return MbbDirection::kMixed;
  }
  return MbbDirection::kMixed;
}

Result<MbbDirection> MbbBetweenRegions(const Region& a, const Region& b) {
  CARDIR_RETURN_IF_ERROR(a.Validate());
  CARDIR_RETURN_IF_ERROR(b.Validate());
  return MbbBetweenBoxes(a.BoundingBox(), b.BoundingBox());
}

bool MbbConsistentWithRelation(MbbDirection direction,
                               const CardinalRelation& relation) {
  // Tiles allowed per MBB verdict: the asserted strict separations.
  auto row_ok = [&](Tile t) {
    switch (direction) {
      case MbbDirection::kNorth:
      case MbbDirection::kNortheast:
      case MbbDirection::kNorthwest:
        return RowOf(t) == TileRow::kNorth;
      case MbbDirection::kSouth:
      case MbbDirection::kSoutheast:
      case MbbDirection::kSouthwest:
        return RowOf(t) == TileRow::kSouth;
      default:
        return true;
    }
  };
  auto column_ok = [&](Tile t) {
    switch (direction) {
      case MbbDirection::kEast:
      case MbbDirection::kNortheast:
      case MbbDirection::kSoutheast:
        return ColumnOf(t) == TileColumn::kEast;
      case MbbDirection::kWest:
      case MbbDirection::kNorthwest:
      case MbbDirection::kSouthwest:
        return ColumnOf(t) == TileColumn::kWest;
      default:
        return true;
    }
  };
  for (Tile t : relation.Tiles()) {
    if (!row_ok(t) || !column_ok(t)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, MbbDirection direction) {
  return os << MbbDirectionName(direction);
}

}  // namespace cardir
