#include "clipping/liang_barsky.h"

#include <algorithm>

namespace cardir {

std::optional<Segment> ClipSegmentToBox(const Segment& segment,
                                        const Box& box) {
  const double dx = segment.b.x - segment.a.x;
  const double dy = segment.b.y - segment.a.y;
  double t0 = 0.0;
  double t1 = 1.0;

  // For each of the four boundaries: p·t ≤ q must hold for points inside.
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {segment.a.x - box.min_x(), box.max_x() - segment.a.x,
                       segment.a.y - box.min_y(), box.max_y() - segment.a.y};

  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return std::nullopt;  // Parallel and outside.
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return std::nullopt;
      t0 = std::max(t0, r);
    } else {
      if (r < t0) return std::nullopt;
      t1 = std::min(t1, r);
    }
  }
  if (t0 > t1) return std::nullopt;
  return Segment(segment.At(t0), segment.At(t1));
}

}  // namespace cardir
