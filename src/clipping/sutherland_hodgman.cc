#include "clipping/sutherland_hodgman.h"

namespace cardir {

Polygon ClipPolygon(const Polygon& polygon,
                    const std::vector<HalfPlane>& half_planes) {
  std::vector<Point> ring = polygon.vertices();
  for (const HalfPlane& half_plane : half_planes) {
    if (ring.empty()) break;
    ring = ClipRingByHalfPlane(ring, half_plane);
  }
  return Polygon(std::move(ring));
}

Polygon ClipPolygonToBox(const Polygon& polygon, const Box& box) {
  return ClipPolygon(polygon, {
                                  HalfPlane::XAtLeast(box.min_x()),
                                  HalfPlane::XAtMost(box.max_x()),
                                  HalfPlane::YAtLeast(box.min_y()),
                                  HalfPlane::YAtMost(box.max_y()),
                              });
}

}  // namespace cardir
