#include "clipping/baseline_cdr.h"

#include "clipping/tile_clipper.h"

namespace cardir {

CdrComputation BaselineCdrUnchecked(const Region& primary,
                                    const Region& reference) {
  const TileDecomposition decomposition =
      ClipRegionToTiles(primary, reference.BoundingBox());
  CdrComputation result;
  result.input_edges = decomposition.input_edges;
  result.output_edges = decomposition.output_edges;
  for (Tile tile : kAllTiles) {
    for (const Polygon& piece :
         decomposition.pieces[static_cast<int>(tile)]) {
      if (piece.Area() > 0.0) {
        result.relation.Add(tile);
        break;
      }
    }
  }
  return result;
}

CdrPercentComputation BaselineCdrPercentUnchecked(const Region& primary,
                                                  const Region& reference) {
  const TileDecomposition decomposition =
      ClipRegionToTiles(primary, reference.BoundingBox());
  CdrPercentComputation result;
  for (Tile tile : kAllTiles) {
    double area = 0.0;
    for (const Polygon& piece :
         decomposition.pieces[static_cast<int>(tile)]) {
      area += piece.Area();
    }
    result.tile_areas[static_cast<int>(tile)] = area;
    result.total_area += area;
  }
  result.matrix = PercentageMatrix::FromAreas(result.tile_areas);
  return result;
}

Result<CdrComputation> BaselineCdrDetailed(const Region& primary,
                                           const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  return BaselineCdrUnchecked(primary, reference);
}

Result<CardinalRelation> BaselineCdr(const Region& primary,
                                     const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrComputation computation,
                          BaselineCdrDetailed(primary, reference));
  return computation.relation;
}

Result<CdrPercentComputation> BaselineCdrPercentDetailed(
    const Region& primary, const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  return BaselineCdrPercentUnchecked(primary, reference);
}

Result<PercentageMatrix> BaselineCdrPercent(const Region& primary,
                                            const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrPercentComputation computation,
                          BaselineCdrPercentDetailed(primary, reference));
  return computation.matrix;
}

}  // namespace cardir
