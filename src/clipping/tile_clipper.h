// Clipping a region against the nine (possibly unbounded) tiles of a
// reference mbb — the "obvious" approach the paper argues against (§3,
// Fig. 3): each tile is a convex intersection of at most four half-planes,
// so Sutherland–Hodgman applies even to the unbounded peripheral tiles
// (bounded subject ⇒ bounded output).

#ifndef CARDIR_CLIPPING_TILE_CLIPPER_H_
#define CARDIR_CLIPPING_TILE_CLIPPER_H_

#include <array>
#include <vector>

#include "clipping/half_plane.h"
#include "core/tile.h"
#include "geometry/region.h"

namespace cardir {

/// Half-planes whose intersection is the closed tile `tile` of `mbb`
/// (1, 2, 3 or 4 planes depending on the tile).
std::vector<HalfPlane> TileHalfPlanes(Tile tile, const Box& mbb);

/// All pieces of `region` clipped into the nine tiles, plus the edge-count
/// instrumentation reported in §3.1 (e.g. Fig. 3b: one quadrangle becomes
/// four quadrangles, 16 edges).
struct TileDecomposition {
  /// pieces[t] = the clipped polygons of the region inside tile t (possibly
  /// empty or degenerate rings).
  std::array<std::vector<Polygon>, kNumTiles> pieces;
  /// Total edges of the input region.
  size_t input_edges = 0;
  /// Total edges over all non-degenerate output pieces (the clipping
  /// counterpart of CdrComputation::output_edges).
  size_t output_edges = 0;
};

/// Clips every polygon of `region` against every tile of `mbb`. This scans
/// the edges of the region once per tile (9 passes) — exactly the cost the
/// paper's algorithms avoid.
TileDecomposition ClipRegionToTiles(const Region& region, const Box& mbb);

}  // namespace cardir

#endif  // CARDIR_CLIPPING_TILE_CLIPPER_H_
