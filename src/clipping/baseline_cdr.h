// Clipping-based baseline for both computation problems (§3's rejected
// alternative, implemented in full so the paper's comparison — deferred to
// future work in §5 — can be run; see bench/ and the oracle property tests).

#ifndef CARDIR_CLIPPING_BASELINE_CDR_H_
#define CARDIR_CLIPPING_BASELINE_CDR_H_

#include "core/cardinal_relation.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "core/percentage_matrix.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Qualitative relation via tile-by-tile polygon clipping: a tile belongs to
/// the relation iff some clipped piece has positive area. Shares the
/// `CdrComputation` instrumentation shape with the paper's algorithm so the
/// introduced-edge counts can be compared directly.
Result<CdrComputation> BaselineCdrDetailed(const Region& primary,
                                           const Region& reference);

Result<CardinalRelation> BaselineCdr(const Region& primary,
                                     const Region& reference);

/// Quantitative relation via clipping: per-tile areas are shoelace areas of
/// the clipped pieces.
Result<CdrPercentComputation> BaselineCdrPercentDetailed(
    const Region& primary, const Region& reference);

Result<PercentageMatrix> BaselineCdrPercent(const Region& primary,
                                            const Region& reference);

/// Unchecked fast paths for benchmarks.
CdrComputation BaselineCdrUnchecked(const Region& primary,
                                    const Region& reference);
CdrPercentComputation BaselineCdrPercentUnchecked(const Region& primary,
                                                  const Region& reference);

}  // namespace cardir

#endif  // CARDIR_CLIPPING_BASELINE_CDR_H_
