#include "clipping/tile_clipper.h"

#include "clipping/sutherland_hodgman.h"

namespace cardir {

std::vector<HalfPlane> TileHalfPlanes(Tile tile, const Box& mbb) {
  std::vector<HalfPlane> planes;
  planes.reserve(4);
  switch (ColumnOf(tile)) {
    case TileColumn::kWest:
      planes.push_back(HalfPlane::XAtMost(mbb.min_x()));
      break;
    case TileColumn::kMiddle:
      planes.push_back(HalfPlane::XAtLeast(mbb.min_x()));
      planes.push_back(HalfPlane::XAtMost(mbb.max_x()));
      break;
    case TileColumn::kEast:
      planes.push_back(HalfPlane::XAtLeast(mbb.max_x()));
      break;
  }
  switch (RowOf(tile)) {
    case TileRow::kSouth:
      planes.push_back(HalfPlane::YAtMost(mbb.min_y()));
      break;
    case TileRow::kMiddle:
      planes.push_back(HalfPlane::YAtLeast(mbb.min_y()));
      planes.push_back(HalfPlane::YAtMost(mbb.max_y()));
      break;
    case TileRow::kNorth:
      planes.push_back(HalfPlane::YAtLeast(mbb.max_y()));
      break;
  }
  return planes;
}

TileDecomposition ClipRegionToTiles(const Region& region, const Box& mbb) {
  TileDecomposition result;
  result.input_edges = region.TotalEdges();
  for (Tile tile : kAllTiles) {
    const std::vector<HalfPlane> planes = TileHalfPlanes(tile, mbb);
    std::vector<Polygon>& bucket = result.pieces[static_cast<int>(tile)];
    for (const Polygon& polygon : region.polygons()) {
      Polygon piece = ClipPolygon(polygon, planes);
      if (piece.size() >= 3 && piece.Area() > 0.0) {
        result.output_edges += piece.size();
        bucket.push_back(std::move(piece));
      }
    }
  }
  return result;
}

}  // namespace cardir
