// Liang–Barsky parametric segment clipping against a box (paper ref. [7]).
//
// Used as a cross-check utility: the sub-segment of an edge inside the B
// tile computed here must agree with the edge splitter's B pieces.

#ifndef CARDIR_CLIPPING_LIANG_BARSKY_H_
#define CARDIR_CLIPPING_LIANG_BARSKY_H_

#include <optional>

#include "geometry/box.h"
#include "geometry/segment.h"

namespace cardir {

/// The portion of `segment` inside the closed box, or nullopt when the
/// segment misses the box entirely. A touching segment yields a degenerate
/// (zero-length) result.
std::optional<Segment> ClipSegmentToBox(const Segment& segment,
                                        const Box& box);

}  // namespace cardir

#endif  // CARDIR_CLIPPING_LIANG_BARSKY_H_
