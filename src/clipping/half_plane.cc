#include "clipping/half_plane.h"

namespace cardir {
namespace {

// Intersection of segment ab with the half-plane boundary; fa/fb are the
// signed evaluations at a and b (opposite strict signs).
Point BoundaryIntersection(const Point& a, const Point& b,
                           const HalfPlane& half_plane, double fa, double fb) {
  const double t = fa / (fa - fb);
  Point p = a + t * (b - a);
  // Snap onto axis-aligned boundaries so later exact comparisons hold.
  if (half_plane.normal.y == 0.0) p.x = half_plane.p.x;
  if (half_plane.normal.x == 0.0) p.y = half_plane.p.y;
  return p;
}

}  // namespace

std::vector<Point> ClipRingByHalfPlane(const std::vector<Point>& ring,
                                       const HalfPlane& half_plane) {
  std::vector<Point> out;
  const size_t n = ring.size();
  if (n == 0) return out;
  out.reserve(n + 2);
  for (size_t i = 0; i < n; ++i) {
    const Point& current = ring[i];
    const Point& next = ring[(i + 1) % n];
    const double fc = half_plane.Evaluate(current);
    const double fn = half_plane.Evaluate(next);
    const bool current_in = fc >= 0.0;
    const bool next_in = fn >= 0.0;
    if (current_in) {
      out.push_back(current);
      if (!next_in && fc > 0.0) {
        out.push_back(BoundaryIntersection(current, next, half_plane, fc, fn));
      }
    } else if (next_in) {
      if (fn > 0.0) {
        out.push_back(BoundaryIntersection(current, next, half_plane, fc, fn));
      }
    }
  }
  // Remove consecutive duplicates introduced by vertices on the boundary.
  std::vector<Point> dedup;
  dedup.reserve(out.size());
  for (const Point& p : out) {
    if (dedup.empty() || !(dedup.back() == p)) dedup.push_back(p);
  }
  while (dedup.size() > 1 && dedup.front() == dedup.back()) dedup.pop_back();
  return dedup;
}

}  // namespace cardir
