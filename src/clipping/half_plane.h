// Oriented half-planes and the single-step polygon clip used by
// Sutherland–Hodgman. The nine tiles of a reference mbb are intersections of
// at most four axis-aligned half-planes, so axis-aligned factories are
// provided; the clip itself is generic.

#ifndef CARDIR_CLIPPING_HALF_PLANE_H_
#define CARDIR_CLIPPING_HALF_PLANE_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace cardir {

/// The closed half-plane { q : Dot(q − p, normal) ≥ 0 }.
struct HalfPlane {
  Point p;       ///< A point on the boundary line.
  Point normal;  ///< Inward normal (need not be unit length).

  /// Signed "insideness" of q (positive inside, 0 on the line).
  double Evaluate(const Point& q) const { return Dot(q - p, normal); }
  bool Contains(const Point& q) const { return Evaluate(q) >= 0.0; }

  /// { (x, y) : x ≤ bound }.
  static HalfPlane XAtMost(double bound) {
    return {Point(bound, 0.0), Point(-1.0, 0.0)};
  }
  /// { (x, y) : x ≥ bound }.
  static HalfPlane XAtLeast(double bound) {
    return {Point(bound, 0.0), Point(1.0, 0.0)};
  }
  /// { (x, y) : y ≤ bound }.
  static HalfPlane YAtMost(double bound) {
    return {Point(0.0, bound), Point(0.0, -1.0)};
  }
  /// { (x, y) : y ≥ bound }.
  static HalfPlane YAtLeast(double bound) {
    return {Point(0.0, bound), Point(0.0, 1.0)};
  }
};

/// One Sutherland–Hodgman step: clips `ring` (any simple ring) by the closed
/// half-plane, returning the clipped ring (possibly empty). Vertices exactly
/// on the boundary are kept; for axis-aligned half-planes the intersection
/// coordinates are snapped exactly onto the boundary line.
std::vector<Point> ClipRingByHalfPlane(const std::vector<Point>& ring,
                                       const HalfPlane& half_plane);

}  // namespace cardir

#endif  // CARDIR_CLIPPING_HALF_PLANE_H_
