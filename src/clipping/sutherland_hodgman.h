// Sutherland–Hodgman polygon clipping against a convex clip region given as
// an intersection of half-planes (paper refs [7,10] discuss clipping as the
// obvious — and rejected — route to computing cardinal direction relations).

#ifndef CARDIR_CLIPPING_SUTHERLAND_HODGMAN_H_
#define CARDIR_CLIPPING_SUTHERLAND_HODGMAN_H_

#include <vector>

#include "clipping/half_plane.h"
#include "geometry/box.h"
#include "geometry/polygon.h"

namespace cardir {

/// Clips `polygon` by every half-plane in turn. The result ring can be empty
/// (fully clipped away) or degenerate (zero area) when the polygon only
/// touches the clip region. For concave subject polygons the classic
/// algorithm may emit coincident "bridge" edges; their net area is zero, so
/// area computations remain correct.
Polygon ClipPolygon(const Polygon& polygon,
                    const std::vector<HalfPlane>& half_planes);

/// Clips `polygon` to a closed box (four half-planes).
Polygon ClipPolygonToBox(const Polygon& polygon, const Box& box);

}  // namespace cardir

#endif  // CARDIR_CLIPPING_SUTHERLAND_HODGMAN_H_
