#include "extensions/topology.h"

#include <algorithm>
#include <vector>

#include "geometry/primitives.h"
#include "util/logging.h"

namespace cardir {
namespace {

// Splits `edge` at every contact point with the boundary of `other` (the
// caller guarantees no proper crossings) and classifies the pieces'
// midpoints. Sets *saw_inside / *saw_outside; *saw_contact is set when the
// edge touches the other boundary at all. Pieces whose midpoint is interior
// to `self` are skipped: they are shared internal edges of a decomposed
// representation (Fig. 2 style) and not part of the union's boundary.
void ClassifyEdgeAgainst(const Segment& edge, const Region& self,
                         const Region& other, bool* saw_inside,
                         bool* saw_outside, bool* saw_contact) {
  // Contact parameters along `edge`: endpoints of the other region's edges
  // that lie on it (tangent touches and collinear-overlap bounds all occur
  // at such points when there is no proper crossing).
  std::vector<double> params;
  const Point dir = edge.Direction();
  const double len2 = Dot(dir, dir);
  for (const Polygon& polygon : other.polygons()) {
    for (size_t e = 0; e < polygon.size(); ++e) {
      const Segment be = polygon.edge(e);
      if (!SegmentsIntersect(edge, be)) continue;
      *saw_contact = true;
      for (const Point& q : {be.a, be.b}) {
        if (OnSegment(q, edge)) {
          params.push_back(Dot(q - edge.a, dir) / len2);
        }
      }
    }
  }
  params.push_back(0.0);
  params.push_back(1.0);
  std::sort(params.begin(), params.end());
  for (size_t i = 0; i + 1 < params.size(); ++i) {
    const double t0 = std::clamp(params[i], 0.0, 1.0);
    const double t1 = std::clamp(params[i + 1], 0.0, 1.0);
    if (t1 <= t0) continue;
    const Point mid = edge.At(0.5 * (t0 + t1));
    if (self.Locate(mid) == PointLocation::kInside) continue;
    switch (other.Locate(mid)) {
      case PointLocation::kInside: *saw_inside = true; break;
      case PointLocation::kOutside: *saw_outside = true; break;
      case PointLocation::kBoundary: *saw_contact = true; break;
    }
  }
}

// Classifies all of `region`'s boundary against `other`.
void ClassifyBoundary(const Region& region, const Region& other,
                      bool* saw_inside, bool* saw_outside,
                      bool* saw_contact) {
  for (const Polygon& polygon : region.polygons()) {
    for (size_t e = 0; e < polygon.size(); ++e) {
      ClassifyEdgeAgainst(polygon.edge(e), region, other, saw_inside,
                          saw_outside, saw_contact);
    }
  }
}

}  // namespace

std::string_view TopologicalRelationName(TopologicalRelation relation) {
  switch (relation) {
    case TopologicalRelation::kDisjoint: return "disjoint";
    case TopologicalRelation::kMeet: return "meet";
    case TopologicalRelation::kOverlap: return "overlap";
    case TopologicalRelation::kEqual: return "equal";
    case TopologicalRelation::kInside: return "inside";
    case TopologicalRelation::kCoveredBy: return "coveredBy";
    case TopologicalRelation::kContains: return "contains";
    case TopologicalRelation::kCovers: return "covers";
  }
  return "?";
}

bool ParseTopologicalRelation(std::string_view name,
                              TopologicalRelation* relation) {
  static constexpr TopologicalRelation kAll[] = {
      TopologicalRelation::kDisjoint, TopologicalRelation::kMeet,
      TopologicalRelation::kOverlap,  TopologicalRelation::kEqual,
      TopologicalRelation::kInside,   TopologicalRelation::kCoveredBy,
      TopologicalRelation::kContains, TopologicalRelation::kCovers};
  for (TopologicalRelation r : kAll) {
    if (TopologicalRelationName(r) == name) {
      *relation = r;
      return true;
    }
  }
  return false;
}

TopologicalRelation ConverseTopology(TopologicalRelation relation) {
  switch (relation) {
    case TopologicalRelation::kInside: return TopologicalRelation::kContains;
    case TopologicalRelation::kContains: return TopologicalRelation::kInside;
    case TopologicalRelation::kCoveredBy: return TopologicalRelation::kCovers;
    case TopologicalRelation::kCovers: return TopologicalRelation::kCoveredBy;
    default: return relation;  // disjoint/meet/overlap/equal are symmetric.
  }
}

Result<TopologicalRelation> ComputeTopology(const Region& a,
                                            const Region& b) {
  CARDIR_RETURN_IF_ERROR(a.Validate());
  CARDIR_RETURN_IF_ERROR(b.Validate());

  // Fast reject: separated bounding boxes cannot even touch.
  if (!a.BoundingBox().Intersects(b.BoundingBox())) {
    return TopologicalRelation::kDisjoint;
  }

  // Any proper boundary crossing implies partial overlap.
  for (const Polygon& pa : a.polygons()) {
    for (size_t ea = 0; ea < pa.size(); ++ea) {
      const Segment sa = pa.edge(ea);
      for (const Polygon& pb : b.polygons()) {
        for (size_t eb = 0; eb < pb.size(); ++eb) {
          if (SegmentsProperlyCross(sa, pb.edge(eb))) {
            return TopologicalRelation::kOverlap;
          }
        }
      }
    }
  }

  bool a_in = false, a_out = false, b_in = false, b_out = false;
  bool contact = false;
  ClassifyBoundary(a, b, &a_in, &a_out, &contact);
  ClassifyBoundary(b, a, &b_in, &b_out, &contact);

  // Interior probes: one strictly interior point per member polygon. They
  // distinguish containment from enclave configurations where one region's
  // boundary lies entirely on the other's (e.g. a region exactly filling a
  // hole): the boundaries coincide but the interiors are disjoint.
  bool a_int_in = false, a_int_out = false;
  bool b_int_in = false, b_int_out = false;
  for (const Polygon& polygon : a.polygons()) {
    switch (b.Locate(polygon.AnyInteriorPoint())) {
      case PointLocation::kInside: a_int_in = true; break;
      case PointLocation::kOutside: a_int_out = true; break;
      case PointLocation::kBoundary: break;  // Measure-zero graze: neutral.
    }
  }
  for (const Polygon& polygon : b.polygons()) {
    switch (a.Locate(polygon.AnyInteriorPoint())) {
      case PointLocation::kInside: b_int_in = true; break;
      case PointLocation::kOutside: b_int_out = true; break;
      case PointLocation::kBoundary: break;
    }
  }

  const bool a_subset = !a_out && !a_int_out;
  const bool b_subset = !b_out && !b_int_out;
  const bool interiors_meet = a_in || b_in || a_int_in || b_int_in;
  if (a_subset && b_subset) return TopologicalRelation::kEqual;
  if (a_subset) {
    return contact ? TopologicalRelation::kCoveredBy
                   : TopologicalRelation::kInside;
  }
  if (b_subset) {
    return contact ? TopologicalRelation::kCovers
                   : TopologicalRelation::kContains;
  }
  if (interiors_meet) return TopologicalRelation::kOverlap;
  return contact ? TopologicalRelation::kMeet
                 : TopologicalRelation::kDisjoint;
}

std::ostream& operator<<(std::ostream& os, TopologicalRelation relation) {
  return os << TopologicalRelationName(relation);
}

}  // namespace cardir
