// Topological relations between REG* regions — the paper's §5 lists
// "combining topological [2] and distance [3] relations" with cardinal
// directions as future work; this module provides the topological half.
//
// The relations are the RCC8 base relations specialised to regular closed
// polygon regions (Egenhofer's 9-intersection for regions yields the same
// eight): disjoint, meet (externally connected), overlap (partial overlap),
// equal, inside (non-tangential proper part), coveredBy (tangential proper
// part), and the converses contains / covers.
//
// The classifier works without boolean polygon operations: a proper edge
// crossing between the two boundaries immediately implies overlap; without
// proper crossings, each boundary is split at its contact points with the
// other region and the resulting sub-edges are classified strictly-inside /
// on-boundary / strictly-outside, which determines the relation.

#ifndef CARDIR_EXTENSIONS_TOPOLOGY_H_
#define CARDIR_EXTENSIONS_TOPOLOGY_H_

#include <ostream>
#include <string_view>

#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// The eight RCC8 base relations. Naming follows the region-calculus
/// convention; `a Inside b` means a is a non-tangential proper part of b.
enum class TopologicalRelation {
  kDisjoint,
  kMeet,
  kOverlap,
  kEqual,
  kInside,
  kCoveredBy,
  kContains,
  kCovers,
};

/// Canonical lowercase name ("disjoint", "meet", ...), matching the query
/// language keywords.
std::string_view TopologicalRelationName(TopologicalRelation relation);

/// Parses a canonical name; returns false on failure.
bool ParseTopologicalRelation(std::string_view name,
                              TopologicalRelation* relation);

/// The converse relation (meet ↔ meet, inside ↔ contains, ...).
TopologicalRelation ConverseTopology(TopologicalRelation relation);

/// Classifies the topological relation of a w.r.t. b. Fails with
/// kInvalidArgument when either region fails Validate().
Result<TopologicalRelation> ComputeTopology(const Region& a, const Region& b);

std::ostream& operator<<(std::ostream& os, TopologicalRelation relation);

}  // namespace cardir

#endif  // CARDIR_EXTENSIONS_TOPOLOGY_H_
