#include "extensions/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/primitives.h"
#include "util/logging.h"

namespace cardir {
namespace {

// Distance between two segments: 0 when they intersect, else the minimum
// endpoint-to-segment distance (sufficient for non-intersecting segments).
double SegmentDistance(const Segment& s, const Segment& t) {
  if (SegmentsIntersect(s, t)) return 0.0;
  return std::min(
      std::min(PointSegmentDistance(s.a, t), PointSegmentDistance(s.b, t)),
      std::min(PointSegmentDistance(t.a, s), PointSegmentDistance(t.b, s)));
}

}  // namespace

std::string_view DistanceRelationName(DistanceRelation relation) {
  switch (relation) {
    case DistanceRelation::kVeryClose: return "veryClose";
    case DistanceRelation::kClose: return "close";
    case DistanceRelation::kCommensurate: return "commensurate";
    case DistanceRelation::kFar: return "far";
    case DistanceRelation::kVeryFar: return "veryFar";
  }
  return "?";
}

bool ParseDistanceRelation(std::string_view name, DistanceRelation* relation) {
  static constexpr DistanceRelation kAll[] = {
      DistanceRelation::kVeryClose, DistanceRelation::kClose,
      DistanceRelation::kCommensurate, DistanceRelation::kFar,
      DistanceRelation::kVeryFar};
  for (DistanceRelation r : kAll) {
    if (DistanceRelationName(r) == name) {
      *relation = r;
      return true;
    }
  }
  return false;
}

Result<double> MinimumDistance(const Region& a, const Region& b) {
  CARDIR_RETURN_IF_ERROR(a.Validate());
  CARDIR_RETURN_IF_ERROR(b.Validate());
  // Containment without boundary intersection (one region deep inside the
  // other) also gives distance zero.
  if (b.Contains(a.polygons().front().vertex(0)) ||
      a.Contains(b.polygons().front().vertex(0))) {
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  for (const Polygon& pa : a.polygons()) {
    for (size_t ea = 0; ea < pa.size(); ++ea) {
      const Segment sa = pa.edge(ea);
      for (const Polygon& pb : b.polygons()) {
        for (size_t eb = 0; eb < pb.size(); ++eb) {
          best = std::min(best, SegmentDistance(sa, pb.edge(eb)));
          if (best == 0.0) return 0.0;
        }
      }
    }
  }
  return best;
}

Result<DistanceRelation> ComputeDistanceRelation(const Region& a,
                                                 const Region& b,
                                                 const DistanceScheme& scheme) {
  CARDIR_ASSIGN_OR_RETURN(double distance, MinimumDistance(a, b));
  const Box mbb = b.BoundingBox();
  const double scale = std::hypot(mbb.width(), mbb.height());
  CARDIR_CHECK(scale > 0.0) << "reference region with degenerate mbb";
  const double ratio = distance / scale;
  for (int i = 0; i < 4; ++i) {
    if (ratio < scheme.thresholds[static_cast<size_t>(i)]) {
      return static_cast<DistanceRelation>(i);
    }
  }
  return DistanceRelation::kVeryFar;
}

std::ostream& operator<<(std::ostream& os, DistanceRelation relation) {
  return os << DistanceRelationName(relation);
}

}  // namespace cardir
