// Qualitative distance relations between REG* regions — the other half of
// the paper's §5 future-work item "combining topological [2] and distance
// [3] relations" (Frank's qualitative distance system).
//
// The metric substrate is the exact Euclidean set distance between the two
// regions (0 when they intersect). The qualitative layer buckets the metric
// into named ranges relative to a scale — by default the diagonal of the
// reference region's bounding box, so "near" means "within a reference-
// region's size", mirroring Frank's frame-of-reference proportions.

#ifndef CARDIR_EXTENSIONS_DISTANCE_H_
#define CARDIR_EXTENSIONS_DISTANCE_H_

#include <array>
#include <ostream>
#include <string_view>

#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Frank-style qualitative distance, ordered from closest to farthest.
enum class DistanceRelation {
  kVeryClose = 0,
  kClose = 1,
  kCommensurate = 2,
  kFar = 3,
  kVeryFar = 4,
};

/// Canonical lowercase name ("veryClose", "close", ...), matching the query
/// language keywords.
std::string_view DistanceRelationName(DistanceRelation relation);

/// Parses a canonical name; returns false on failure.
bool ParseDistanceRelation(std::string_view name, DistanceRelation* relation);

/// Threshold scheme: distance d with scale s falls into bucket i when
/// d / s < thresholds[i] (first match; otherwise kVeryFar). Defaults follow
/// a geometric progression.
struct DistanceScheme {
  std::array<double, 4> thresholds = {0.25, 1.0, 4.0, 16.0};
};

/// Exact Euclidean set distance between the regions: 0 when their closures
/// intersect, otherwise the minimum distance between boundary points.
/// Fails with kInvalidArgument on invalid regions.
Result<double> MinimumDistance(const Region& a, const Region& b);

/// Buckets MinimumDistance(a, b) relative to the diagonal of b's bounding
/// box (the reference region's frame, matching the cardinal-direction
/// model's asymmetry).
Result<DistanceRelation> ComputeDistanceRelation(
    const Region& a, const Region& b, const DistanceScheme& scheme = {});

std::ostream& operator<<(std::ostream& os, DistanceRelation relation);

}  // namespace cardir

#endif  // CARDIR_EXTENSIONS_DISTANCE_H_
