// Error-handling vocabulary for the cardir library.
//
// The library does not throw exceptions across its public API. Functions
// that can fail for data-dependent reasons return `Status` (when there is no
// payload) or `Result<T>` (when there is one). Programming errors (violated
// preconditions inside the library) abort via CARDIR_CHECK in logging.h.

#ifndef CARDIR_UTIL_STATUS_H_
#define CARDIR_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace cardir {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller supplied malformed data.
  kNotFound = 2,          ///< A named entity does not exist.
  kAlreadyExists = 3,     ///< A named entity already exists.
  kFailedPrecondition = 4,///< Operation not valid in the current state.
  kOutOfRange = 5,        ///< Numeric/index value outside the valid range.
  kUnimplemented = 6,     ///< Feature intentionally not provided.
  kInternal = 7,          ///< Invariant violation detected at runtime.
  kParseError = 8,        ///< Textual input could not be parsed.
  kIoError = 9,           ///< Filesystem / stream failure.
  kInconsistent = 10,     ///< A constraint network admits no model.
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation: either OK or a code plus a human-readable message.
///
/// `Status` is cheap to copy for the OK case and small otherwise. Use the
/// factory helpers (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`.
///
/// Accessors `value()` / `operator*` require `ok()`; this is enforced with a
/// process abort (never undefined behaviour) so misuse is diagnosed loudly.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return t;` in Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    AbortIfOkStatus();
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const;
  void AbortIfOkStatus() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal_status {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieOkStatusInResult();
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal_status::DieBadResultAccess(status_);
}

template <typename T>
void Result<T>::AbortIfOkStatus() const {
  if (status_.ok()) internal_status::DieOkStatusInResult();
}

/// Propagates an error status from an expression returning `Status`.
#define CARDIR_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::cardir::Status cardir_status__ = (expr);        \
    if (!cardir_status__.ok()) return cardir_status__;\
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating the error or assigning the
/// value to `lhs`.
#define CARDIR_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  CARDIR_ASSIGN_OR_RETURN_IMPL_(                             \
      CARDIR_STATUS_CONCAT_(result__, __LINE__), lhs, rexpr)

#define CARDIR_STATUS_CONCAT_INNER_(a, b) a##b
#define CARDIR_STATUS_CONCAT_(a, b) CARDIR_STATUS_CONCAT_INNER_(a, b)
#define CARDIR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace cardir

#endif  // CARDIR_UTIL_STATUS_H_
