#include "util/random.h"

// Rng is header-only; this translation unit anchors the library target and
// hosts no definitions today.
