#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace cardir {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buf(StripWhitespace(text));
  if (buf.empty()) return Status::ParseError("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view text) {
  const std::string buf(StripWhitespace(text));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cardir
