#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace cardir {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kInconsistent: return "inconsistent";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "cardir: value() called on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieOkStatusInResult() {
  std::fprintf(stderr,
               "cardir: Result constructed from OK status without a value\n");
  std::abort();
}

}  // namespace internal_status
}  // namespace cardir
