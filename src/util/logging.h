// Minimal leveled logging and check macros.
//
// CARDIR_CHECK(cond) aborts (with file/line and the failed expression) when
// `cond` is false; it is reserved for programming errors, never for
// data-dependent failures (those return Status, see util/status.h).
// CARDIR_LOG(level) << ... emits a line to stderr when `level` is at or above
// the global threshold (default kWarning; configurable via SetLogLevel or the
// CARDIR_LOG_LEVEL environment variable: debug|info|warning|error).
//
// Each log line is assembled in full — prefix, message, newline — and
// emitted with a single write(2), so concurrent CARDIR_LOG calls from
// engine worker threads never interleave mid-line. Set
// CARDIR_LOG_TIMESTAMPS=1 (or SetLogTimestamps(true)) to prefix lines with
// an ISO-8601 UTC timestamp.

#ifndef CARDIR_UTIL_LOGGING_H_
#define CARDIR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cardir {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level emitted by CARDIR_LOG.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

/// Enables/disables the ISO-8601 UTC timestamp prefix (overrides the
/// CARDIR_LOG_TIMESTAMPS environment variable).
void SetLogTimestamps(bool enabled);

/// True when log lines carry a timestamp prefix.
bool GetLogTimestamps();

/// Observer invoked with every fully formatted log line (including the
/// trailing newline) after it is written to stderr. The hook runs on the
/// logging thread and must be cheap and reentrancy-safe (it must not log).
/// Used by the obs flight recorder to keep a tail of recent log lines.
/// Pass nullptr to clear. Not a layering inversion: util knows only this
/// function-pointer seam, never the obs types.
using LogLineHook = void (*)(const char* line, size_t length);
void SetLogLineHook(LogLineHook hook);

namespace internal_logging {

/// The full log line for `message` (prefix, message, trailing newline) —
/// exactly what LogMessage writes. Exposed for tests.
std::string FormatLogLine(LogLevel level, const char* file, int line,
                          const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void DieCheckFailure(const char* file, int line,
                                  const char* expression,
                                  const std::string& extra);

class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expression)
      : file_(file), line_(line), expression_(expression) {}
  [[noreturn]] ~CheckFailureStream();

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expression_;
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator: swallows the streamed expression.
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define CARDIR_LOG(level)                                           \
  (static_cast<int>(::cardir::LogLevel::level) <                    \
   static_cast<int>(::cardir::GetLogLevel()))                       \
      ? (void)0                                                     \
      : ::cardir::internal_logging::Voidify() &                     \
            ::cardir::internal_logging::LogMessage(                 \
                ::cardir::LogLevel::level, __FILE__, __LINE__)      \
                .stream()

#define CARDIR_CHECK(condition)                                       \
  (condition)                                                         \
      ? (void)0                                                       \
      : ::cardir::internal_logging::Voidify() &                       \
            ::cardir::internal_logging::CheckFailureStream(           \
                __FILE__, __LINE__, #condition)                       \
                .stream()

#define CARDIR_CHECK_OK(status_expr)                                   \
  do {                                                                 \
    const ::cardir::Status cardir_check_status__ = (status_expr);      \
    CARDIR_CHECK(cardir_check_status__.ok())                           \
        << cardir_check_status__.ToString();                           \
  } while (false)

#define CARDIR_DCHECK(condition) CARDIR_CHECK(condition)

}  // namespace cardir

#endif  // CARDIR_UTIL_LOGGING_H_
