// Deterministic pseudo-random number generation for workloads and tests.
//
// `Rng` wraps a SplitMix64 core: fast, high quality for simulation purposes,
// trivially seedable, and fully reproducible across platforms (unlike
// std::uniform_*_distribution, whose output is implementation-defined).

#ifndef CARDIR_UTIL_RANDOM_H_
#define CARDIR_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace cardir {

/// Deterministic, seedable PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGamma) {}

  /// Next raw 64-bit value (SplitMix64).
  uint64_t NextUint64() {
    uint64_t z = (state_ += kGamma);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound) {
    CARDIR_DCHECK(bound > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi) {
    CARDIR_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      std::swap((*values)[i - 1], (*values)[NextBelow(i)]);
    }
  }

 private:
  static constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  uint64_t state_;
};

}  // namespace cardir

#endif  // CARDIR_UTIL_RANDOM_H_
