// Small string helpers shared across the library (no locale dependence).

#ifndef CARDIR_UTIL_STRING_UTIL_H_
#define CARDIR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cardir {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII letters.
std::string AsciiToLower(std::string_view text);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Parses a double from the whole of `text` (no trailing garbage allowed).
Result<double> ParseDouble(std::string_view text);

/// Parses a base-10 integer from the whole of `text`.
Result<int64_t> ParseInt(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cardir

#endif  // CARDIR_UTIL_STRING_UTIL_H_
