#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace cardir {
namespace {

std::atomic<int> g_log_level{-1};    // -1: not yet initialised.
std::atomic<int> g_timestamps{-1};   // -1: not yet initialised.
std::atomic<LogLineHook> g_line_hook{nullptr};

LogLevel InitialLevelFromEnv() {
  // Lazy one-shot init (first log call); nothing writes the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("CARDIR_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

bool InitialTimestampsFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("CARDIR_LOG_TIMESTAMPS");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

// "2026-08-06T12:34:56Z" (UTC, second resolution).
std::string Iso8601Now() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

// One write(2) per line: the kernel serialises concurrent writes to the
// same descriptor, so lines from different threads cannot interleave
// mid-line the way multiple buffered fprintf segments can.
void WriteLine(const std::string& line) {
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(STDERR_FILENO, line.data() + written, line.size() - written);
    if (n <= 0) break;  // Logging must never loop on a broken stderr.
    written += static_cast<size_t>(n);
  }
  const LogLineHook hook = g_line_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(line.data(), line.size());
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int level = g_log_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(InitialLevelFromEnv());
    g_log_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetLogLineHook(LogLineHook hook) {
  g_line_hook.store(hook, std::memory_order_release);
}

bool GetLogTimestamps() {
  int enabled = g_timestamps.load(std::memory_order_relaxed);
  if (enabled < 0) {
    enabled = InitialTimestampsFromEnv() ? 1 : 0;
    g_timestamps.store(enabled, std::memory_order_relaxed);
  }
  return enabled == 1;
}

namespace internal_logging {

std::string FormatLogLine(LogLevel level, const char* file, int line,
                          const std::string& message) {
  std::string out;
  out.reserve(message.size() + 64);
  out += '[';
  if (GetLogTimestamps()) {
    out += Iso8601Now();
    out += ' ';
  }
  out += LevelName(level);
  out += ' ';
  out += Basename(file);
  out += ':';
  out += std::to_string(line);
  out += "] ";
  out += message;
  out += '\n';
  return out;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  WriteLine(FormatLogLine(level_, file_, line_, stream_.str()));
  if (level_ == LogLevel::kFatal) std::abort();
}

void DieCheckFailure(const char* file, int line, const char* expression,
                     const std::string& extra) {
  std::string message = "CHECK failed: ";
  message += expression;
  if (!extra.empty()) {
    message += " — ";
    message += extra;
  }
  WriteLine(FormatLogLine(LogLevel::kFatal, file, line, message));
  std::abort();
}

CheckFailureStream::~CheckFailureStream() {
  DieCheckFailure(file_, line_, expression_, stream_.str());
}

}  // namespace internal_logging
}  // namespace cardir
