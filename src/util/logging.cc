#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cardir {
namespace {

std::atomic<int> g_log_level{-1};  // -1: not yet initialised.

LogLevel InitialLevelFromEnv() {
  const char* env = std::getenv("CARDIR_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int level = g_log_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(InitialLevelFromEnv());
    g_log_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) std::abort();
}

void DieCheckFailure(const char* file, int line, const char* expression,
                     const std::string& extra) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s%s%s\n", Basename(file),
               line, expression, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

CheckFailureStream::~CheckFailureStream() {
  DieCheckFailure(file_, line_, expression_, stream_.str());
}

}  // namespace internal_logging
}  // namespace cardir
