// Runtime ISA dispatch for batched kernels (shared by the engine's
// interval-classification kernel and core's sub-edge classification).
//
// The hot kernels are pure streaming arithmetic that vectorizes ~8x wider
// under AVX2, but the library targets the baseline x86-64 ABI; function
// multi-versioning compiles each annotated entry point once per listed ISA
// and the loader picks via the GNU ifunc mechanism, so the kernels reach
// vector speed without -march flags leaking into the build. Disabled under
// the sanitizers (ifunc resolvers run before their runtimes initialise —
// ASan intercepts the resolver's memory before shadow setup) and on
// non-GCC/non-x86 toolchains, where the plain definition stands.
//
// `kKernelClonesActive` mirrors the macro so tests can assert the clones
// really are compiled out in sanitizer builds (tests/core/edge_soa_test.cc).

#ifndef CARDIR_UTIL_TARGET_CLONES_H_
#define CARDIR_UTIL_TARGET_CLONES_H_

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define CARDIR_KERNEL_CLONES __attribute__((target_clones("avx2", "default")))
#define CARDIR_KERNEL_CLONES_ACTIVE 1
#else
#define CARDIR_KERNEL_CLONES
#define CARDIR_KERNEL_CLONES_ACTIVE 0
#endif

namespace cardir {

/// True when CARDIR_KERNEL_CLONES expands to a target_clones attribute in
/// this build (i.e. multi-versioned kernels with ifunc dispatch); false in
/// sanitizer builds and on toolchains without the mechanism.
inline constexpr bool kKernelClonesActive = CARDIR_KERNEL_CLONES_ACTIVE == 1;

}  // namespace cardir

#endif  // CARDIR_UTIL_TARGET_CLONES_H_
