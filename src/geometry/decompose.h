// Even-odd trapezoidal decomposition: turns a set of rings (an outer
// boundary plus holes, or any non-crossing arrangement interpreted with the
// even-odd rule) into a set of simple polygons with pairwise-disjoint
// interiors — the REG* representation of Fig. 2, generalised beyond
// axis-aligned rings.
//
// The plane is sliced into horizontal slabs at every ring vertex; inside a
// slab each non-horizontal edge spans it fully, so sorting the crossing
// edges by x and pairing them even-odd yields the covered trapezoids.
// Neighbouring trapezoids share edges, exactly like the paper's
// hole-decomposition examples.

#ifndef CARDIR_GEOMETRY_DECOMPOSE_H_
#define CARDIR_GEOMETRY_DECOMPOSE_H_

#include <vector>

#include "geometry/polygon.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Decomposes the even-odd interior of `rings` into trapezoids. Rings may
/// be nested (holes, islands-in-holes, ...) but must not cross each other
/// or themselves; ring orientation is irrelevant. Fails when the covered
/// area is empty or a ring is structurally invalid.
Result<Region> DecomposeEvenOdd(const std::vector<Polygon>& rings);

/// Convenience for the common case: one outer ring and its holes.
Result<Region> DecomposePolygonWithHoles(const Polygon& outer,
                                         const std::vector<Polygon>& holes);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_DECOMPOSE_H_
