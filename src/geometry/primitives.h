// Shared low-level geometric predicates and constructions.

#ifndef CARDIR_GEOMETRY_PRIMITIVES_H_
#define CARDIR_GEOMETRY_PRIMITIVES_H_

#include <optional>

#include "geometry/point.h"
#include "geometry/segment.h"

namespace cardir {

/// True when point p lies on the closed segment s (collinear and within the
/// segment's bounding box). Exact arithmetic on the cross product.
bool OnSegment(const Point& p, const Segment& s);

/// True when the closed segments share at least one point (includes touching
/// endpoints and collinear overlap).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// True when the *open* interiors of the segments cross at a single point
/// (proper crossing; endpoint touching and collinear overlap excluded).
bool SegmentsProperlyCross(const Segment& s, const Segment& t);

/// Intersection point of properly crossing segments; nullopt when they do
/// not properly cross.
std::optional<Point> ProperIntersection(const Segment& s, const Segment& t);

/// Distance from point p to the closed segment s.
double PointSegmentDistance(const Point& p, const Segment& s);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_PRIMITIVES_H_
