#include "geometry/box.h"

namespace cardir {

std::ostream& operator<<(std::ostream& os, const Box& box) {
  if (box.IsEmpty()) return os << "Box(empty)";
  return os << "Box[" << box.min_x() << "," << box.max_x() << "]x["
            << box.min_y() << "," << box.max_y() << "]";
}

}  // namespace cardir
