#include "geometry/robust.h"

#include <cmath>

// Exact floating-point predicates: expansion arithmetic *is* equality-
// and sign-exact by construction; epsilon comparisons here would destroy
// the robustness guarantee.
// cardir-analyzer: allow-file(float-eq): exact expansion arithmetic, equality is the algorithm

namespace cardir {
namespace {

// ---------------------------------------------------------------------------
// Expansion arithmetic (Shewchuk 1997). An expansion is a sum of
// non-overlapping doubles stored least-significant first; the primitives
// below are exact: no rounding error escapes.
// ---------------------------------------------------------------------------

struct TwoSum {
  double hi;
  double lo;
};

inline TwoSum FastTwoSum(double a, double b) {
  // Requires |a| >= |b|.
  const double hi = a + b;
  const double lo = b - (hi - a);
  return {hi, lo};
}

inline TwoSum ExactTwoSum(double a, double b) {
  const double hi = a + b;
  const double b_virtual = hi - a;
  const double a_virtual = hi - b_virtual;
  const double b_round = b - b_virtual;
  const double a_round = a - a_virtual;
  return {hi, a_round + b_round};
}

inline TwoSum ExactTwoDiff(double a, double b) {
  const double hi = a - b;
  const double b_virtual = a - hi;
  const double a_virtual = hi + b_virtual;
  const double b_round = b_virtual - b;
  const double a_round = a - a_virtual;
  return {hi, a_round + b_round};
}

// Splits a double into two 26-bit halves for exact multiplication.
inline void Split(double a, double* hi, double* lo) {
  constexpr double kSplitter = 134217729.0;  // 2^27 + 1.
  const double c = kSplitter * a;
  *hi = c - (c - a);
  *lo = a - *hi;
}

inline TwoSum TwoProduct(double a, double b) {
  const double hi = a * b;
  double a_hi, a_lo, b_hi, b_lo;
  Split(a, &a_hi, &a_lo);
  Split(b, &b_hi, &b_lo);
  const double err1 = hi - (a_hi * b_hi);
  const double err2 = err1 - (a_lo * b_hi);
  const double err3 = err2 - (a_hi * b_lo);
  return {hi, (a_lo * b_lo) - err3};
}

// Machine epsilon related constants, computed once (Shewchuk's exactinit).
struct Constants {
  double ccw_err_bound_a;
  double ccw_err_bound_b;
  double ccw_err_bound_c;
  double result_err_bound;

  Constants() {
    double epsilon = 1.0;
    double check = 1.0;
    double last_check;
    do {
      last_check = check;
      epsilon *= 0.5;
      check = 1.0 + epsilon;
    } while (check != 1.0 && check != last_check);
    result_err_bound = (3.0 + 8.0 * epsilon) * epsilon;
    ccw_err_bound_a = (3.0 + 16.0 * epsilon) * epsilon;
    ccw_err_bound_b = (2.0 + 12.0 * epsilon) * epsilon;
    ccw_err_bound_c = (9.0 + 64.0 * epsilon) * epsilon * epsilon;
  }
};

const Constants& GetConstants() {
  static const Constants constants;
  return constants;
}

double Estimate(int n, const double* e) {
  double q = e[0];
  for (int i = 1; i < n; ++i) q += e[i];
  return q;
}

// Adds scalar b to expansion e (length n), eliminating zero components
// (Shewchuk's GrowExpansionZeroElim). Returns the new length.
int GrowExpansionZeroElim(int n, const double* e, double b, double* h) {
  double q = b;
  int h_len = 0;
  for (int i = 0; i < n; ++i) {
    const TwoSum s = ExactTwoSum(q, e[i]);
    q = s.hi;
    if (s.lo != 0.0) h[h_len++] = s.lo;
  }
  if (q != 0.0 || h_len == 0) h[h_len++] = q;
  return h_len;
}

// The adaptive stage of orient2d: exact evaluation of the determinant when
// the filtered estimate is inconclusive.
double Orient2DAdapt(const Point& pa, const Point& pb, const Point& pc,
                     double detsum) {
  const Constants& k = GetConstants();

  const double acx = pa.x - pc.x;
  const double bcx = pb.x - pc.x;
  const double acy = pa.y - pc.y;
  const double bcy = pb.y - pc.y;

  TwoSum detleft = TwoProduct(acx, bcy);
  TwoSum detright = TwoProduct(acy, bcx);
  double b[4];
  // B = detleft − detright as a 4-expansion.
  {
    TwoSum s0 = ExactTwoDiff(detleft.lo, detright.lo);
    b[0] = s0.lo;
    TwoSum t = ExactTwoSum(detleft.hi, s0.hi);
    TwoSum u = ExactTwoDiff(t.lo, detright.hi);
    b[1] = u.lo;
    TwoSum v = FastTwoSum(t.hi, u.hi);
    b[2] = v.lo;
    b[3] = v.hi;
  }

  double det = Estimate(4, b);
  double err_bound = k.ccw_err_bound_b * detsum;
  if (det >= err_bound || -det >= err_bound) return det;

  // Account for the rounding of the coordinate differences.
  const double acx_tail = [&] {
    const TwoSum d = ExactTwoDiff(pa.x, pc.x);
    return d.hi == acx ? d.lo : 0.0;
  }();
  const double bcx_tail = [&] {
    const TwoSum d = ExactTwoDiff(pb.x, pc.x);
    return d.hi == bcx ? d.lo : 0.0;
  }();
  const double acy_tail = [&] {
    const TwoSum d = ExactTwoDiff(pa.y, pc.y);
    return d.hi == acy ? d.lo : 0.0;
  }();
  const double bcy_tail = [&] {
    const TwoSum d = ExactTwoDiff(pb.y, pc.y);
    return d.hi == bcy ? d.lo : 0.0;
  }();

  if (acx_tail == 0.0 && acy_tail == 0.0 && bcx_tail == 0.0 &&
      bcy_tail == 0.0) {
    return det;  // The differences were exact: so is det.
  }

  err_bound = k.ccw_err_bound_c * detsum + k.result_err_bound * std::abs(det);
  det += (acx * bcy_tail + bcy * acx_tail) -
         (acy * bcx_tail + bcx * acy_tail);
  if (det >= err_bound || -det >= err_bound) return det;

  // Full exact computation: accumulate all cross terms into one expansion.
  double c1[20];
  double c2[20];
  double d[20];
  int len = 4;
  const double* current = b;
  double* next = c1;

  auto add_cross = [&](double x, double x_tail, double y, double y_tail,
                       bool subtract) {
    // (x + x_tail)·(y + y_tail) contributions beyond x·y, folded into the
    // running expansion one exact product component at a time.
    TwoSum p1 = TwoProduct(x_tail, y);
    TwoSum p2 = TwoProduct(x, y_tail);
    TwoSum p3 = TwoProduct(x_tail, y_tail);
    double terms[6] = {p1.lo, p1.hi, p2.lo, p2.hi, p3.lo, p3.hi};
    for (double term : terms) {
      if (term == 0.0) continue;
      len = GrowExpansionZeroElim(len, current, subtract ? -term : term,
                                  next);
      current = next;
      next = (next == c1) ? c2 : (next == c2 ? d : c1);
    }
  };

  // det = (acx + acx_tail)(bcy + bcy_tail) − (acy + acy_tail)(bcx + bcx_tail).
  add_cross(acx, acx_tail, bcy, bcy_tail, /*subtract=*/false);
  add_cross(acy, acy_tail, bcx, bcx_tail, /*subtract=*/true);
  return current[len - 1];
}

}  // namespace

double RobustOrient2D(const Point& pa, const Point& pb, const Point& pc) {
  const Constants& k = GetConstants();
  const double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  const double detright = (pa.y - pc.y) * (pb.x - pc.x);
  const double det = detleft - detright;
  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double err_bound = k.ccw_err_bound_a * detsum;
  if (det >= err_bound || -det >= err_bound) return det;
  return Orient2DAdapt(pa, pb, pc, detsum);
}

int RobustOrientSign(const Point& a, const Point& b, const Point& c) {
  const double det = RobustOrient2D(a, b, c);
  if (det > 0.0) return 1;
  if (det < 0.0) return -1;
  return 0;
}

}  // namespace cardir
