// 2-D point / vector in the Euclidean plane (paper §2: regions live in R^2).

#ifndef CARDIR_GEOMETRY_POINT_H_
#define CARDIR_GEOMETRY_POINT_H_

#include <cmath>
#include <ostream>

namespace cardir {

/// A point (or free vector) in R^2. Plain value type; exact comparisons.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  friend constexpr bool operator==(const Point& a, const Point& b) {
    // cardir-analyzer: allow(float-eq): exact structural equality
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }

  friend constexpr Point operator+(const Point& a, const Point& b) {
    return Point(a.x + b.x, a.y + b.y);
  }
  friend constexpr Point operator-(const Point& a, const Point& b) {
    return Point(a.x - b.x, a.y - b.y);
  }
  friend constexpr Point operator*(double s, const Point& p) {
    return Point(s * p.x, s * p.y);
  }
  friend constexpr Point operator*(const Point& p, double s) { return s * p; }
};

/// Dot product of vectors a and b.
constexpr double Dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z-component of a × b). Positive when b is
/// counter-clockwise from a.
constexpr double Cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Signed area of the parallelogram (b−a, c−a): >0 when a,b,c turn
/// counter-clockwise, <0 clockwise, 0 collinear.
constexpr double Orient2D(const Point& a, const Point& b, const Point& c) {
  return Cross(b - a, c - a);
}

/// Euclidean norm.
inline double Norm(const Point& p) { return std::hypot(p.x, p.y); }

/// Euclidean distance between a and b.
inline double Distance(const Point& a, const Point& b) { return Norm(b - a); }

/// Midpoint of segment ab.
constexpr Point Midpoint(const Point& a, const Point& b) {
  return Point(0.5 * (a.x + b.x), 0.5 * (a.y + b.y));
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_POINT_H_
