// Exact-sign orientation predicate (a port of the orient2d routine from
// Shewchuk's classic robust predicates): a fast floating-point filter backed
// by adaptive exact expansion arithmetic, so the returned sign is correct
// for ALL double inputs — including the nearly-collinear configurations
// where the naive determinant rounds to the wrong side.
//
// The geometry layer's predicates (OnSegment, SegmentsIntersect, polygon
// orientation and containment) route their orientation tests through this
// module; everything downstream (edge splitting, clipping, topology,
// sweep-line) inherits the robustness.

#ifndef CARDIR_GEOMETRY_ROBUST_H_
#define CARDIR_GEOMETRY_ROBUST_H_

#include "geometry/point.h"

namespace cardir {

/// Sign of Orient2D(a, b, c), exactly: +1 when a,b,c turn counter-clockwise,
/// −1 clockwise, 0 when exactly collinear.
int RobustOrientSign(const Point& a, const Point& b, const Point& c);

/// A value with the exact sign of Orient2D(a, b, c) (the magnitude is the
/// adaptively-computed approximation, correct to machine precision).
double RobustOrient2D(const Point& a, const Point& b, const Point& c);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_ROBUST_H_
