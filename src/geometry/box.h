// Axis-aligned boxes: the minimum bounding box (mbb) of the paper's §2.
//
// The four lines x = min_x, x = max_x, y = min_y, y = max_y of the reference
// region's mbb partition the plane into the nine closed tiles of Fig. 1a.

#ifndef CARDIR_GEOMETRY_BOX_H_
#define CARDIR_GEOMETRY_BOX_H_

#include <limits>
#include <ostream>

#include "geometry/point.h"

namespace cardir {

/// Closed axis-aligned rectangle [min_x, max_x] × [min_y, max_y].
///
/// A default-constructed Box is *empty* (inverted bounds); extending an empty
/// box with a point yields the degenerate box at that point.
class Box {
 public:
  Box() = default;
  Box(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  static Box Empty() { return Box(); }

  /// Smallest box containing both corners.
  static Box FromCorners(const Point& a, const Point& b) {
    Box box;
    box.Extend(a);
    box.Extend(b);
    return box;
  }

  bool IsEmpty() const { return min_x_ > max_x_ || min_y_ > max_y_; }

  /// True when the box has zero width or height (a point or a segment):
  /// legal as a bound but not as the mbb of a REG* region, which has
  /// positive area in both projections.
  bool IsDegenerate() const {
    // cardir-analyzer: allow(float-eq): degenerate-box test is exact by design
    return !IsEmpty() && (min_x_ == max_x_ || min_y_ == max_y_);
  }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double width() const { return max_x_ - min_x_; }
  double height() const { return max_y_ - min_y_; }
  double area() const { return IsEmpty() ? 0.0 : width() * height(); }

  Point Center() const {
    return Point(0.5 * (min_x_ + max_x_), 0.5 * (min_y_ + max_y_));
  }

  /// Grows the box to contain `p`.
  void Extend(const Point& p) {
    if (p.x < min_x_) min_x_ = p.x;
    if (p.x > max_x_) max_x_ = p.x;
    if (p.y < min_y_) min_y_ = p.y;
    if (p.y > max_y_) max_y_ = p.y;
  }

  /// Grows the box to contain `other`.
  void Extend(const Box& other) {
    if (other.IsEmpty()) return;
    Extend(Point(other.min_x_, other.min_y_));
    Extend(Point(other.max_x_, other.max_y_));
  }

  /// Closed containment of a point.
  bool Contains(const Point& p) const {
    return !IsEmpty() && p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ &&
           p.y <= max_y_;
  }

  /// Closed containment of another box.
  bool Contains(const Box& other) const {
    return !IsEmpty() && !other.IsEmpty() && other.min_x_ >= min_x_ &&
           other.max_x_ <= max_x_ && other.min_y_ >= min_y_ &&
           other.max_y_ <= max_y_;
  }

  /// True when the closed boxes share at least one point.
  bool Intersects(const Box& other) const {
    return !IsEmpty() && !other.IsEmpty() && other.min_x_ <= max_x_ &&
           other.max_x_ >= min_x_ && other.min_y_ <= max_y_ &&
           other.max_y_ >= min_y_;
  }

  friend bool operator==(const Box& a, const Box& b) {
    // cardir-analyzer: allow(float-eq): exact structural equality
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           // cardir-analyzer: allow(float-eq): exact structural equality
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

 private:
  double min_x_ = std::numeric_limits<double>::infinity();
  double min_y_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  double max_y_ = -std::numeric_limits<double>::infinity();
};

std::ostream& operator<<(std::ostream& os, const Box& box);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_BOX_H_
