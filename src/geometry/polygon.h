// Simple polygons stored as vertex rings.
//
// Following the paper (§3), polygon edges are taken in *clockwise* order:
// walking along an edge, the polygon interior lies to the right. Composite
// regions (class REG*) are sets of such polygons; see geometry/region.h.

#ifndef CARDIR_GEOMETRY_POLYGON_H_
#define CARDIR_GEOMETRY_POLYGON_H_

#include <initializer_list>
#include <ostream>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"
#include "util/status.h"

namespace cardir {

/// Orientation of a vertex ring.
enum class Orientation {
  kClockwise,
  kCounterClockwise,
  kDegenerate,  ///< Zero signed area (collinear or self-cancelling ring).
};

/// Where a point lies relative to a polygon.
enum class PointLocation {
  kInside,
  kBoundary,
  kOutside,
};

/// A simple polygon given by its vertex ring (no repetition of the first
/// vertex at the end). The library's canonical orientation is clockwise; use
/// `EnsureClockwise()` after building from untrusted input.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}
  Polygon(std::initializer_list<Point> vertices) : vertices_(vertices) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }
  const Point& vertex(size_t i) const { return vertices_[i]; }

  void AddVertex(const Point& p) { vertices_.push_back(p); }

  /// Edge i runs from vertex i to vertex (i+1) mod n.
  Segment edge(size_t i) const {
    return Segment(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
  }

  /// All n edges in ring order.
  std::vector<Segment> Edges() const;

  /// Signed area by the shoelace formula: negative for clockwise rings
  /// (the canonical orientation), positive for counter-clockwise.
  double SignedArea() const;

  /// Area centroid (centre of mass of the enclosed lamina). CHECK-fails on
  /// degenerate (zero-area) rings.
  Point Centroid() const;

  /// |SignedArea()|.
  double Area() const { return std::abs(SignedArea()); }

  double Perimeter() const;

  Orientation GetOrientation() const;

  /// True when the ring is clockwise (the paper's convention).
  bool IsClockwise() const {
    return GetOrientation() == Orientation::kClockwise;
  }

  /// Reverses the vertex ring in place.
  void Reverse();

  /// Reverses the ring if needed so that it is clockwise. Degenerate rings
  /// are left untouched.
  void EnsureClockwise();

  /// Minimum bounding box of the vertex ring.
  Box BoundingBox() const;

  /// Locates `p` relative to the closed polygon (ray-crossing with an exact
  /// boundary test first, so boundary points are never misclassified).
  PointLocation Locate(const Point& p) const;

  /// Closed containment: inside or on the boundary.
  bool Contains(const Point& p) const {
    return Locate(p) != PointLocation::kOutside;
  }

  /// A point strictly inside the polygon (ear centroids first, then a grid
  /// scan over the bounding box). CHECK-fails on degenerate polygons, for
  /// which no interior point exists.
  Point AnyInteriorPoint() const;

  /// Structural validation: at least 3 vertices, no consecutive duplicate
  /// vertices, non-zero area. Does not check self-intersection (see
  /// `ValidateSimple`, which is O(n^2)).
  Status Validate() const;

  /// `Validate()` plus a quadratic check that no two non-adjacent edges
  /// intersect (i.e. the ring is a simple polygon).
  Status ValidateSimple() const;

  friend bool operator==(const Polygon& a, const Polygon& b) {
    return a.vertices_ == b.vertices_;
  }

 private:
  std::vector<Point> vertices_;
};

std::ostream& operator<<(std::ostream& os, const Polygon& polygon);

/// Convenience: axis-aligned rectangle as a clockwise polygon.
Polygon MakeRectangle(double min_x, double min_y, double max_x, double max_y);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_POLYGON_H_
