#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "geometry/primitives.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

std::vector<Segment> Polygon::Edges() const {
  std::vector<Segment> edges;
  if (vertices_.size() < 2) return edges;
  edges.reserve(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) edges.push_back(edge(i));
  return edges;
}

double Polygon::SignedArea() const {
  // Shoelace; positive for counter-clockwise rings.
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    twice += Cross(p, q);
  }
  return 0.5 * twice;
}

Point Polygon::Centroid() const {
  const size_t n = vertices_.size();
  const double signed_area = SignedArea();
  // cardir-analyzer: allow(float-eq): exact-zero degeneracy check
  CARDIR_CHECK(signed_area != 0.0) << "centroid of a degenerate polygon";
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    const double w = Cross(p, q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  return Point(cx / (6.0 * signed_area), cy / (6.0 * signed_area));
}

double Polygon::Perimeter() const {
  const size_t n = vertices_.size();
  if (n < 2) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += Distance(vertices_[i], vertices_[(i + 1) % n]);
  }
  return total;
}

Orientation Polygon::GetOrientation() const {
  const double area = SignedArea();
  if (area < 0.0) return Orientation::kClockwise;
  if (area > 0.0) return Orientation::kCounterClockwise;
  return Orientation::kDegenerate;
}

void Polygon::Reverse() { std::reverse(vertices_.begin(), vertices_.end()); }

void Polygon::EnsureClockwise() {
  if (GetOrientation() == Orientation::kCounterClockwise) Reverse();
}

Box Polygon::BoundingBox() const {
  Box box;
  for (const Point& p : vertices_) box.Extend(p);
  return box;
}

PointLocation Polygon::Locate(const Point& p) const {
  const size_t n = vertices_.size();
  if (n < 3) return PointLocation::kOutside;
  // Exact boundary test first.
  for (size_t i = 0; i < n; ++i) {
    if (OnSegment(p, edge(i))) return PointLocation::kBoundary;
  }
  // Ray crossing to +x. Because p is not on the boundary, the usual
  // half-open vertex rule is unambiguous.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const bool a_below = a.y <= p.y;
    const bool b_below = b.y <= p.y;
    if (a_below == b_below) continue;  // Edge does not straddle the ray line.
    // x-coordinate where the edge crosses y = p.y.
    const double t = (p.y - a.y) / (b.y - a.y);
    const double x_cross = a.x + t * (b.x - a.x);
    if (x_cross > p.x) inside = !inside;
  }
  return inside ? PointLocation::kInside : PointLocation::kOutside;
}

Point Polygon::AnyInteriorPoint() const {
  const size_t n = vertices_.size();
  CARDIR_CHECK(n >= 3) << "no interior point of a degenerate polygon";
  // Ear centroids: for most polygons the centroid of some vertex triangle
  // lies inside.
  for (size_t i = 0; i < n; ++i) {
    const Point& prev = vertices_[(i + n - 1) % n];
    const Point& curr = vertices_[i];
    const Point& next = vertices_[(i + 1) % n];
    const Point centroid((prev.x + curr.x + next.x) / 3.0,
                         (prev.y + curr.y + next.y) / 3.0);
    if (Locate(centroid) == PointLocation::kInside) return centroid;
  }
  // Fallback: progressively finer grid scan of the bounding box.
  const Box box = BoundingBox();
  for (int grid = 4; grid <= 4096; grid *= 2) {
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        const Point candidate(
            box.min_x() + (gx + 0.5) / grid * box.width(),
            box.min_y() + (gy + 0.5) / grid * box.height());
        if (Locate(candidate) == PointLocation::kInside) return candidate;
      }
    }
  }
  CARDIR_CHECK(false) << "no interior point found (degenerate polygon?)";
  return Point();
}

Status Polygon::Validate() const {
  const size_t n = vertices_.size();
  if (n < 3) {
    return Status::InvalidArgument(
        StrFormat("polygon needs at least 3 vertices, got %zu", n));
  }
  for (size_t i = 0; i < n; ++i) {
    if (vertices_[i] == vertices_[(i + 1) % n]) {
      return Status::InvalidArgument(
          StrFormat("duplicate consecutive vertex at index %zu", i));
    }
    if (!std::isfinite(vertices_[i].x) || !std::isfinite(vertices_[i].y)) {
      return Status::InvalidArgument(
          StrFormat("non-finite coordinate at index %zu", i));
    }
  }
  // cardir-analyzer: allow(float-eq): exact-zero degeneracy check
  if (SignedArea() == 0.0) {
    return Status::InvalidArgument("polygon has zero area");
  }
  return Status::Ok();
}

Status Polygon::ValidateSimple() const {
  CARDIR_RETURN_IF_ERROR(Validate());
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // Adjacent edges (sharing a vertex) legitimately touch.
      const bool adjacent = (j == i + 1) || (i == 0 && j == n - 1);
      if (adjacent) {
        if (SegmentsProperlyCross(edge(i), edge(j))) {
          return Status::InvalidArgument(
              StrFormat("adjacent edges %zu and %zu cross", i, j));
        }
        continue;
      }
      if (SegmentsIntersect(edge(i), edge(j))) {
        return Status::InvalidArgument(
            StrFormat("non-adjacent edges %zu and %zu intersect", i, j));
      }
    }
  }
  return Status::Ok();
}

std::ostream& operator<<(std::ostream& os, const Polygon& polygon) {
  os << "Polygon{";
  for (size_t i = 0; i < polygon.size(); ++i) {
    if (i > 0) os << ", ";
    os << polygon.vertex(i);
  }
  return os << "}";
}

Polygon MakeRectangle(double min_x, double min_y, double max_x, double max_y) {
  // Clockwise ring: NW -> NE -> SE -> SW.
  return Polygon({Point(min_x, max_y), Point(max_x, max_y),
                  Point(max_x, min_y), Point(min_x, min_y)});
}

}  // namespace cardir
