#include "geometry/sweep.h"

#include <algorithm>
#include <limits>
#include <set>

#include "geometry/primitives.h"
#include "util/logging.h"
#include "util/string_util.h"

// The sweep orders events and status entries by exact coordinate
// values; its comparators must be strict weak orders, which epsilon
// comparisons are not (they lose transitivity). Equality against a
// stored coordinate is the intended semantics throughout.
// cardir-analyzer: allow-file(float-eq): sweep comparators need exact strict-weak orders

namespace cardir {
namespace {

// Lexicographic point order: by x, then y.
bool PointLess(const Point& a, const Point& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

// A segment normalised so that `left` is the lexicographically smaller
// endpoint.
struct SweepSegment {
  Point left;
  Point right;
  size_t index;

  // y-coordinate of the segment at sweep position x (exact at endpoints).
  double YAt(double x) const {
    if (right.x == left.x) return left.y;  // Vertical: anchor at lower end.
    if (x <= left.x) return left.y;
    if (x >= right.x) return right.y;
    const double t = (x - left.x) / (right.x - left.x);
    return left.y + t * (right.y - left.y);
  }

  double Slope() const {
    if (right.x == left.x) return std::numeric_limits<double>::infinity();
    return (right.y - left.y) / (right.x - left.x);
  }
};

struct Event {
  double x;
  int type;  // 0 = segment starts, 1 = segment ends (starts first).
  double y;
  size_t segment;  // Index into the SweepSegment array.

  friend bool operator<(const Event& a, const Event& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.type != b.type) return a.type < b.type;
    if (a.y != b.y) return a.y < b.y;
    return a.segment < b.segment;
  }
};

}  // namespace

std::optional<std::pair<size_t, size_t>> FindIntersectingPair(
    const std::vector<Segment>& segments,
    const std::function<bool(size_t, size_t)>& exempt) {
  std::vector<SweepSegment> sweep;
  sweep.reserve(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].IsDegenerate()) continue;
    SweepSegment s{segments[i].a, segments[i].b, i};
    if (PointLess(s.right, s.left)) std::swap(s.left, s.right);
    sweep.push_back(s);
  }
  std::vector<Event> events;
  events.reserve(2 * sweep.size());
  for (size_t i = 0; i < sweep.size(); ++i) {
    events.push_back({sweep[i].left.x, 0, sweep[i].left.y, i});
    events.push_back({sweep[i].right.x, 1, sweep[i].right.y, i});
  }
  std::sort(events.begin(), events.end());

  // Status: active segments ordered by y at the sweep position, slope and
  // index breaking ties. Before the first intersection is found no two
  // active segments share a point, so their order is strict and invariant
  // between events; ties occur exactly at touch points and are handled by
  // the tie-walk below. Erasure goes through stored iterators, never
  // through comparator-based lookup, so right-endpoint ties cannot strand
  // an element.
  double sweep_x = 0.0;
  auto less = [&sweep, &sweep_x](size_t a, size_t b) {
    const double ya = sweep[a].YAt(sweep_x);
    const double yb = sweep[b].YAt(sweep_x);
    if (ya != yb) return ya < yb;
    const double sa = sweep[a].Slope();
    const double sb = sweep[b].Slope();
    if (sa != sb) return sa < sb;
    return sweep[a].index < sweep[b].index;
  };
  using SweepStatus = std::set<size_t, decltype(less)>;
  SweepStatus status(less);
  std::vector<SweepStatus::iterator> where(sweep.size());

  // Tests a candidate pair; returns true when a genuine intersection was
  // found (filling *result).
  auto hits = [&](size_t a, size_t b, std::pair<size_t, size_t>* result) {
    const size_t i = sweep[a].index;
    const size_t j = sweep[b].index;
    const Segment& si = segments[i];
    const Segment& sj = segments[j];
    const bool is_exempt = exempt != nullptr && (exempt(i, j) || exempt(j, i));
    const bool bad = is_exempt ? SegmentsProperlyCross(si, sj)
                               : SegmentsIntersect(si, sj);
    if (!bad) return false;
    *result = {std::min(i, j), std::max(i, j)};
    return true;
  };

  // Tests `center` against its status neighbours and against the whole
  // contiguous run of segments tying with it at the current sweep position
  // (segments with equal y here share a point — every such pair is an
  // intersection candidate).
  auto probe_around = [&](SweepStatus::iterator center,
                          std::pair<size_t, size_t>* result) {
    const double y = sweep[*center].YAt(sweep_x);
    // Downward: immediate neighbour, then the tying run.
    for (auto it = center; it != status.begin();) {
      --it;
      if (hits(*it, *center, result)) return true;
      if (sweep[*it].YAt(sweep_x) != y) break;  // Left the tying run.
    }
    // Upward.
    for (auto it = std::next(center); it != status.end(); ++it) {
      if (hits(*center, *it, result)) return true;
      if (sweep[*it].YAt(sweep_x) != y) break;
    }
    return false;
  };

  std::pair<size_t, size_t> found;
  for (const Event& event : events) {
    sweep_x = event.x;
    if (event.type == 0) {
      const auto [it, inserted] = status.insert(event.segment);
      CARDIR_CHECK(inserted);
      where[event.segment] = it;
      if (probe_around(it, &found)) return found;
    } else {
      const auto it = where[event.segment];
      if (probe_around(it, &found)) return found;
      // The segments flanking the removed one become neighbours.
      const bool has_prev = it != status.begin();
      const auto next = std::next(it);
      if (has_prev && next != status.end()) {
        if (hits(*std::prev(it), *next, &found)) return found;
      }
      status.erase(it);
    }
  }
  return std::nullopt;
}

Status ValidatePolygonSimpleSweep(const Polygon& polygon) {
  CARDIR_RETURN_IF_ERROR(polygon.Validate());
  const std::vector<Segment> edges = polygon.Edges();
  const size_t n = edges.size();
  auto adjacent = [n](size_t i, size_t j) {
    return j == (i + 1) % n || i == (j + 1) % n;
  };
  const auto intersection = FindIntersectingPair(edges, adjacent);
  if (intersection.has_value()) {
    return Status::InvalidArgument(
        StrFormat("edges %zu and %zu intersect", intersection->first,
                  intersection->second));
  }
  return Status::Ok();
}

}  // namespace cardir
