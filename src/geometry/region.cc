#include "geometry/region.h"

#include "geometry/primitives.h"
#include "geometry/sweep.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

size_t Region::TotalEdges() const {
  size_t total = 0;
  for (const Polygon& p : polygons_) total += p.size();
  return total;
}

Box Region::BoundingBox() const {
  Box box;
  for (const Polygon& p : polygons_) box.Extend(p.BoundingBox());
  return box;
}

double Region::Area() const {
  double total = 0.0;
  for (const Polygon& p : polygons_) total += p.Area();
  return total;
}

Point Region::Centroid() const {
  double total = 0.0;
  Point weighted(0.0, 0.0);
  for (const Polygon& polygon : polygons_) {
    const double area = polygon.Area();
    weighted = weighted + area * polygon.Centroid();
    total += area;
  }
  CARDIR_CHECK(total > 0.0) << "centroid of an empty/zero-area region";
  return Point(weighted.x / total, weighted.y / total);
}

bool Region::Contains(const Point& p) const {
  for (const Polygon& polygon : polygons_) {
    if (polygon.Contains(p)) return true;
  }
  return false;
}

PointLocation Region::Locate(const Point& p) const {
  bool on_boundary = false;
  // Edges (from distinct polygons) whose relative interior contains p: a
  // collinear pair means p sits on a shared edge, interior to the union.
  struct InteriorHit {
    size_t polygon;
    Point direction;
  };
  std::vector<InteriorHit> hits;
  for (size_t i = 0; i < polygons_.size(); ++i) {
    const Polygon& polygon = polygons_[i];
    switch (polygon.Locate(p)) {
      case PointLocation::kInside:
        return PointLocation::kInside;
      case PointLocation::kBoundary: {
        on_boundary = true;
        for (size_t e = 0; e < polygon.size(); ++e) {
          const Segment edge = polygon.edge(e);
          if (p != edge.a && p != edge.b && OnSegment(p, edge)) {
            hits.push_back({i, edge.Direction()});
          }
        }
        break;
      }
      case PointLocation::kOutside:
        break;
    }
  }
  for (size_t x = 0; x < hits.size(); ++x) {
    for (size_t y = x + 1; y < hits.size(); ++y) {
      if (hits[x].polygon != hits[y].polygon &&
          // cardir-analyzer: allow(float-eq): exact-zero cross product = collinear rays
          Cross(hits[x].direction, hits[y].direction) == 0.0) {
        return PointLocation::kInside;  // Shared edge of two members.
      }
    }
  }
  return on_boundary ? PointLocation::kBoundary : PointLocation::kOutside;
}

void Region::EnsureClockwise() {
  for (Polygon& p : polygons_) p.EnsureClockwise();
}

Status Region::Validate() const {
  if (polygons_.empty()) {
    return Status::InvalidArgument("region has no polygons");
  }
  for (size_t i = 0; i < polygons_.size(); ++i) {
    Status status = polygons_[i].Validate();
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrFormat("polygon %zu: %s", i, status.message().c_str()));
    }
  }
  return Status::Ok();
}

Status Region::ValidateStrict() const {
  CARDIR_RETURN_IF_ERROR(Validate());
  for (size_t i = 0; i < polygons_.size(); ++i) {
    // The quadratic pairwise check is the exact reference on small rings;
    // larger rings use the O(n log n) sweep.
    Status status = polygons_[i].size() <= 64
                        ? polygons_[i].ValidateSimple()
                        : ValidatePolygonSimpleSweep(polygons_[i]);
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrFormat("polygon %zu: %s", i, status.message().c_str()));
    }
  }
  // Pairwise interior disjointness (approximate but strong): no proper edge
  // crossings, and no vertex of one polygon strictly inside another.
  for (size_t i = 0; i < polygons_.size(); ++i) {
    for (size_t j = i + 1; j < polygons_.size(); ++j) {
      const Polygon& p = polygons_[i];
      const Polygon& q = polygons_[j];
      for (size_t ei = 0; ei < p.size(); ++ei) {
        for (size_t ej = 0; ej < q.size(); ++ej) {
          if (SegmentsProperlyCross(p.edge(ei), q.edge(ej))) {
            return Status::InvalidArgument(
                StrFormat("polygons %zu and %zu have crossing edges", i, j));
          }
        }
      }
      for (const Point& v : p.vertices()) {
        if (q.Locate(v) == PointLocation::kInside) {
          return Status::InvalidArgument(StrFormat(
              "vertex of polygon %zu lies strictly inside polygon %zu", i,
              j));
        }
      }
      for (const Point& v : q.vertices()) {
        if (p.Locate(v) == PointLocation::kInside) {
          return Status::InvalidArgument(StrFormat(
              "vertex of polygon %zu lies strictly inside polygon %zu", j,
              i));
        }
      }
    }
  }
  return Status::Ok();
}

std::ostream& operator<<(std::ostream& os, const Region& region) {
  os << "Region{" << region.polygon_count() << " polygons, "
     << region.TotalEdges() << " edges}";
  return os;
}

}  // namespace cardir
