// Sweep-line segment intersection detection (Shamos–Hoey) and the
// O(n log n) polygon simplicity check built on it — the scalable
// counterpart of Polygon::ValidateSimple's quadratic scan, for the large
// polygons the benchmarks and the segmentation pipeline produce.
//
// Detection only (the algorithm stops at the first intersecting pair), so
// the status order stays consistent throughout: as long as no intersection
// has been found, no two active segments cross, and their vertical order is
// invariant between events.

#ifndef CARDIR_GEOMETRY_SWEEP_H_
#define CARDIR_GEOMETRY_SWEEP_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/segment.h"
#include "util/status.h"

namespace cardir {

/// Finds some intersecting pair of segments (indices i < j), or nullopt
/// when the set is intersection-free. `exempt(i, j)` pairs (e.g. adjacent
/// polygon edges sharing a vertex) are tested with the *proper crossing*
/// predicate only, so legitimate endpoint contact passes. Degenerate
/// (zero-length) segments are ignored.
std::optional<std::pair<size_t, size_t>> FindIntersectingPair(
    const std::vector<Segment>& segments,
    const std::function<bool(size_t, size_t)>& exempt = nullptr);

/// O(n log n) equivalent of Polygon::ValidateSimple: Validate() plus a
/// sweep-line check that no two non-adjacent edges intersect (adjacent
/// edges may share their common vertex but must not properly cross).
Status ValidatePolygonSimpleSweep(const Polygon& polygon);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_SWEEP_H_
