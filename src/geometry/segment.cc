#include "geometry/segment.h"

namespace cardir {

std::optional<double> CrossVerticalLine(const Segment& s, double m) {
  const double dx = s.b.x - s.a.x;
  // cardir-analyzer: allow(float-eq): exact-zero guard before division
  if (dx == 0.0) return std::nullopt;  // Parallel to (or on) the line.
  // Proper crossing requires the endpoints strictly on opposite sides.
  if ((s.a.x < m && s.b.x > m) || (s.a.x > m && s.b.x < m)) {
    return (m - s.a.x) / dx;
  }
  return std::nullopt;
}

std::optional<double> CrossHorizontalLine(const Segment& s, double l) {
  const double dy = s.b.y - s.a.y;
  // cardir-analyzer: allow(float-eq): exact-zero guard before division
  if (dy == 0.0) return std::nullopt;
  if ((s.a.y < l && s.b.y > l) || (s.a.y > l && s.b.y < l)) {
    return (l - s.a.y) / dy;
  }
  return std::nullopt;
}

bool VerticalLineDoesNotCross(const Segment& s, double m) {
  return !CrossVerticalLine(s, m).has_value();
}

bool HorizontalLineDoesNotCross(const Segment& s, double l) {
  return !CrossHorizontalLine(s, l).has_value();
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << "[" << s.a << " -> " << s.b << "]";
}

}  // namespace cardir
