#include "geometry/decompose.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace cardir {
namespace {

// A non-horizontal edge prepared for slab processing: endpoints ordered by
// ascending y.
struct SlabEdge {
  Point low;
  Point high;

  double XAt(double y) const {
    const double t = (y - low.y) / (high.y - low.y);
    return low.x + t * (high.x - low.x);
  }
};

}  // namespace

Result<Region> DecomposeEvenOdd(const std::vector<Polygon>& rings) {
  std::vector<SlabEdge> edges;
  std::set<double> cuts;
  for (size_t r = 0; r < rings.size(); ++r) {
    const Polygon& ring = rings[r];
    CARDIR_RETURN_IF_ERROR(ring.Validate());
    for (size_t e = 0; e < ring.size(); ++e) {
      const Segment edge = ring.edge(e);
      cuts.insert(edge.a.y);
      cuts.insert(edge.b.y);
      // cardir-analyzer: allow(float-eq): horizontal-edge test on stored coords
      if (edge.a.y == edge.b.y) continue;  // Horizontal: no slab crossing.
      SlabEdge slab_edge{edge.a, edge.b};
      if (slab_edge.low.y > slab_edge.high.y) {
        std::swap(slab_edge.low, slab_edge.high);
      }
      edges.push_back(slab_edge);
    }
  }

  Region region;
  const std::vector<double> levels(cuts.begin(), cuts.end());
  std::vector<std::pair<double, const SlabEdge*>> crossing;  // (x_mid, edge).
  for (size_t i = 0; i + 1 < levels.size(); ++i) {
    const double y1 = levels[i];
    const double y2 = levels[i + 1];
    const double ym = 0.5 * (y1 + y2);
    crossing.clear();
    for (const SlabEdge& edge : edges) {
      // Slabs are cut at every vertex y, so an edge either spans the slab
      // fully or misses it.
      if (edge.low.y <= y1 && edge.high.y >= y2) {
        crossing.emplace_back(edge.XAt(ym), &edge);
      }
    }
    if (crossing.size() % 2 != 0) {
      return Status::InvalidArgument(
          StrFormat("rings are not even-odd consistent in slab [%g, %g] "
                    "(crossing or open rings?)",
                    y1, y2));
    }
    std::sort(crossing.begin(), crossing.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t k = 0; k + 1 < crossing.size(); k += 2) {
      const SlabEdge* left = crossing[k].second;
      const SlabEdge* right = crossing[k + 1].second;
      // Clockwise trapezoid: top-left, top-right, bottom-right, bottom-left.
      Polygon trapezoid;
      const Point tl(left->XAt(y2), y2);
      const Point tr(right->XAt(y2), y2);
      const Point br(right->XAt(y1), y1);
      const Point bl(left->XAt(y1), y1);
      trapezoid.AddVertex(tl);
      if (tr != tl) trapezoid.AddVertex(tr);
      if (br != tr) trapezoid.AddVertex(br);
      if (bl != br && bl != tl) trapezoid.AddVertex(bl);
      // cardir-analyzer: allow(float-eq): exact zero signed area = degenerate trapezoid
      if (trapezoid.size() < 3 || trapezoid.SignedArea() == 0.0) {
        continue;  // Degenerate sliver (edges meeting at a vertex).
      }
      trapezoid.EnsureClockwise();
      region.AddPolygon(std::move(trapezoid));
    }
  }
  if (region.empty()) {
    return Status::InvalidArgument("rings cover no area");
  }
  return region;
}

Result<Region> DecomposePolygonWithHoles(const Polygon& outer,
                                         const std::vector<Polygon>& holes) {
  std::vector<Polygon> rings;
  rings.reserve(holes.size() + 1);
  rings.push_back(outer);
  rings.insert(rings.end(), holes.begin(), holes.end());
  return DecomposeEvenOdd(rings);
}

}  // namespace cardir
