// Composite regions: the class REG* of the paper (§2).
//
// A Region is a non-empty finite set of simple clockwise polygons with
// pairwise-disjoint interiors (they may share boundary points/edges). This
// representation covers connected regions (one polygon), disconnected
// regions (several polygons) and regions with holes — a ring with a hole is
// decomposed into simple polygons that share boundary edges, exactly as in
// Fig. 2 of the paper.

#ifndef CARDIR_GEOMETRY_REGION_H_
#define CARDIR_GEOMETRY_REGION_H_

#include <initializer_list>
#include <ostream>
#include <vector>

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "util/status.h"

namespace cardir {

/// A region in REG*: a set of simple polygons (clockwise rings).
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<Polygon> polygons)
      : polygons_(std::move(polygons)) {}
  Region(std::initializer_list<Polygon> polygons) : polygons_(polygons) {}

  /// Convenience for connected regions (class REG).
  explicit Region(Polygon polygon) { polygons_.push_back(std::move(polygon)); }

  const std::vector<Polygon>& polygons() const { return polygons_; }
  size_t polygon_count() const { return polygons_.size(); }
  bool empty() const { return polygons_.empty(); }

  void AddPolygon(Polygon polygon) { polygons_.push_back(std::move(polygon)); }

  /// Total number of edges over all polygons (the `k_a` of Theorems 1–2).
  size_t TotalEdges() const;

  /// Minimum bounding box over all polygons (paper's mbb).
  Box BoundingBox() const;

  /// Sum of polygon areas. Correct under the interior-disjointness
  /// invariant.
  double Area() const;

  /// Area-weighted centroid over all member polygons. CHECK-fails on empty
  /// or zero-area regions.
  Point Centroid() const;

  /// Closed containment: true when `p` lies inside or on the boundary of
  /// any member polygon.
  bool Contains(const Point& p) const;

  /// Locates `p` relative to the region as a point set: on the boundary of
  /// the union, strictly inside it, or outside. A point on a *shared* edge
  /// of two member polygons is interior to the union and reported kInside.
  PointLocation Locate(const Point& p) const;

  /// Reorients every polygon to the canonical clockwise order.
  void EnsureClockwise();

  /// Validates every polygon (`Polygon::Validate`) and that the region is
  /// non-empty. Interior disjointness is not checked here (quadratic); see
  /// `ValidateDisjointInteriors`.
  Status Validate() const;

  /// `Validate()` plus `Polygon::ValidateSimple` per polygon plus a
  /// quadratic pairwise check that no polygon's vertex lies strictly inside
  /// another polygon and no two edges properly cross. Sufficient for the
  /// generated and hand-written fixtures in this repo.
  Status ValidateStrict() const;

  friend bool operator==(const Region& a, const Region& b) {
    return a.polygons_ == b.polygons_;
  }

 private:
  std::vector<Polygon> polygons_;
};

std::ostream& operator<<(std::ostream& os, const Region& region);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_REGION_H_
