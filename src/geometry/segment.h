// Directed line segments and their interaction with axis-parallel lines.
//
// The core algorithms of the paper split polygon edges at the four lines of
// the reference region's minimum bounding box; the helpers here compute those
// intersection parameters exactly (ratios of differences, no epsilons).

#ifndef CARDIR_GEOMETRY_SEGMENT_H_
#define CARDIR_GEOMETRY_SEGMENT_H_

#include <optional>
#include <ostream>
#include <vector>

#include "geometry/point.h"

namespace cardir {

/// A directed segment from `a` to `b` (direction matters: polygons are
/// clockwise rings, and the trapezoid expressions E_l / E'_m of Def. 4 are
/// sign-sensitive).
struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(const Point& pa, const Point& pb) : a(pa), b(pb) {}

  /// Zero-length segments carry no geometric information and are dropped by
  /// the edge splitter.
  constexpr bool IsDegenerate() const { return a == b; }

  constexpr Point Direction() const { return b - a; }
  constexpr Point Mid() const { return Midpoint(a, b); }
  double Length() const { return Distance(a, b); }

  /// Point at parameter t ∈ [0,1] along the segment.
  constexpr Point At(double t) const { return a + t * (b - a); }

  friend constexpr bool operator==(const Segment& s, const Segment& t) {
    // cardir-analyzer: allow(float-eq): exact structural equality
    return s.a == t.a && s.b == t.b;
  }
};

/// Parameter t ∈ (0,1) where the segment properly crosses the vertical line
/// x = m, or nullopt when it does not (touching at an endpoint or lying on
/// the line is not a proper crossing).
std::optional<double> CrossVerticalLine(const Segment& s, double m);

/// Parameter t ∈ (0,1) where the segment properly crosses the horizontal
/// line y = l, or nullopt.
std::optional<double> CrossHorizontalLine(const Segment& s, double l);

/// True when the line x = m "does not cross" the segment in the sense of
/// Def. 3: they do not intersect, touch only at an endpoint, or the segment
/// lies entirely on the line.
bool VerticalLineDoesNotCross(const Segment& s, double m);

/// Horizontal counterpart of VerticalLineDoesNotCross (line y = l).
bool HorizontalLineDoesNotCross(const Segment& s, double l);

/// Trapezoid expression E_l(AB) of Def. 4: the signed area between segment AB
/// and the horizontal line y = l. Requires (for an area interpretation) that
/// the line does not cross AB; the formula itself is total.
///
///   E_l(AB) = (x_B − x_A)(y_A + y_B − 2l) / 2
constexpr double TrapezoidHorizontal(const Segment& s, double l) {
  return 0.5 * (s.b.x - s.a.x) * (s.a.y + s.b.y - 2.0 * l);
}

/// Trapezoid expression E'_m(AB) of Def. 4 against the vertical line x = m.
///
///   E'_m(AB) = (y_B − y_A)(x_A + x_B − 2m) / 2
constexpr double TrapezoidVertical(const Segment& s, double m) {
  return 0.5 * (s.b.y - s.a.y) * (s.a.x + s.b.x - 2.0 * m);
}

std::ostream& operator<<(std::ostream& os, const Segment& s);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_SEGMENT_H_
