// Well-Known Text (WKT) interop for regions: POLYGON and MULTIPOLYGON
// read/write, so configurations can exchange geometry with GEOS/PostGIS/
// Shapely-style tooling.
//
// REG* regions are sets of simple polygons, so exterior rings map 1:1;
// interior rings (holes) are decomposed on import into trapezoids sharing
// edges (geometry/decompose.h — the Fig. 2 representation, generalised).
// On export every member polygon becomes one exterior ring, so a
// WKT→Region→WKT round trip of a holed polygon yields an equivalent (equal
// point set) but hole-free representation.

#ifndef CARDIR_GEOMETRY_WKT_H_
#define CARDIR_GEOMETRY_WKT_H_

#include <string>
#include <string_view>

#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Serialises as `MULTIPOLYGON (((x y, ...)), ...)` — one exterior ring per
/// member polygon, rings closed (first point repeated last), coordinates in
/// shortest round-trippable form.
std::string ToWkt(const Region& region);

/// Parses `POLYGON ((...))`, `MULTIPOLYGON (((...)), ...)` or
/// `GEOMETRYCOLLECTION`-free input (case-insensitive keywords, `EMPTY`
/// rejected). Closed rings are accepted with or without the repeated last
/// point; rings are reoriented to the canonical clockwise order.
Result<Region> RegionFromWkt(std::string_view wkt);

}  // namespace cardir

#endif  // CARDIR_GEOMETRY_WKT_H_
