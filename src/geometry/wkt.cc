#include "geometry/wkt.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "geometry/decompose.h"
#include "util/string_util.h"

namespace cardir {
namespace {

std::string FormatCoordinate(double value) {
  std::string candidate = StrFormat("%.15g", value);
  // cardir-analyzer: allow(float-eq): round-trip check must be bit-exact
  if (std::strtod(candidate.c_str(), nullptr) == value) return candidate;
  return StrFormat("%.17g", value);
}

class WktParser {
 public:
  explicit WktParser(std::string_view input) : input_(input) {}

  Result<Region> Parse() {
    SkipSpace();
    CARDIR_ASSIGN_OR_RETURN(std::string keyword, ReadKeyword());
    Region region;
    if (keyword == "POLYGON") {
      CARDIR_RETURN_IF_ERROR(ParsePolygonBody(&region));
    } else if (keyword == "MULTIPOLYGON") {
      CARDIR_RETURN_IF_ERROR(Expect('('));
      for (;;) {
        CARDIR_RETURN_IF_ERROR(ParsePolygonBody(&region));
        SkipSpace();
        if (TryConsume(',')) continue;
        break;
      }
      CARDIR_RETURN_IF_ERROR(Expect(')'));
    } else {
      return Status::ParseError("unsupported WKT type '" + keyword +
                                "' (POLYGON and MULTIPOLYGON supported)");
    }
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing content after WKT geometry");
    }
    region.EnsureClockwise();
    CARDIR_RETURN_IF_ERROR(region.Validate());
    return region;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!TryConsume(c)) {
      return Status::ParseError(StrFormat("expected '%c' at offset %zu", c,
                                          pos_));
    }
    return Status::Ok();
  }

  Result<std::string> ReadKeyword() {
    SkipSpace();
    std::string keyword;
    while (pos_ < input_.size() &&
           std::isalpha(static_cast<unsigned char>(input_[pos_]))) {
      keyword += static_cast<char>(
          std::toupper(static_cast<unsigned char>(input_[pos_])));
      ++pos_;
    }
    if (keyword.empty()) return Status::ParseError("expected a WKT keyword");
    return keyword;
  }

  Result<double> ReadNumber() {
    SkipSpace();
    const char* start = input_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) {
      return Status::ParseError(
          StrFormat("expected a number at offset %zu", pos_));
    }
    pos_ += static_cast<size_t>(end - start);
    return value;
  }

  // Parses "((ring) [, (hole)...])". A bare exterior ring is appended
  // as-is; rings with holes are decomposed into trapezoids (the Fig. 2
  // representation, generalised) so the result is a valid REG* region.
  Status ParsePolygonBody(Region* region) {
    SkipSpace();
    // "EMPTY" polygons carry no area and cannot be REG* members.
    if (input_.substr(pos_, 5) == "EMPTY") {
      return Status::ParseError("EMPTY geometries are not valid regions");
    }
    CARDIR_RETURN_IF_ERROR(Expect('('));
    Polygon outer;
    CARDIR_RETURN_IF_ERROR(ParseRing(&outer));
    std::vector<Polygon> holes;
    SkipSpace();
    while (TryConsume(',')) {
      Polygon hole;
      CARDIR_RETURN_IF_ERROR(ParseRing(&hole));
      holes.push_back(std::move(hole));
      SkipSpace();
    }
    CARDIR_RETURN_IF_ERROR(Expect(')'));
    if (holes.empty()) {
      region->AddPolygon(std::move(outer));
      return Status::Ok();
    }
    CARDIR_ASSIGN_OR_RETURN(Region decomposed,
                            DecomposePolygonWithHoles(outer, holes));
    for (const Polygon& piece : decomposed.polygons()) {
      region->AddPolygon(piece);
    }
    return Status::Ok();
  }

  Status ParseRing(Polygon* ring) {
    CARDIR_RETURN_IF_ERROR(Expect('('));
    for (;;) {
      CARDIR_ASSIGN_OR_RETURN(double x, ReadNumber());
      CARDIR_ASSIGN_OR_RETURN(double y, ReadNumber());
      ring->AddVertex(Point(x, y));
      SkipSpace();
      if (TryConsume(',')) continue;
      break;
    }
    CARDIR_RETURN_IF_ERROR(Expect(')'));
    // Drop the conventional repeated closing point.
    if (ring->size() >= 2 &&
        ring->vertices().front() == ring->vertices().back()) {
      std::vector<Point> open(ring->vertices().begin(),
                              ring->vertices().end() - 1);
      *ring = Polygon(std::move(open));
    }
    if (ring->size() < 3) {
      return Status::ParseError("ring with fewer than 3 distinct vertices");
    }
    return Status::Ok();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToWkt(const Region& region) {
  std::string out = "MULTIPOLYGON (";
  for (size_t p = 0; p < region.polygons().size(); ++p) {
    if (p > 0) out += ", ";
    out += "((";
    const Polygon& polygon = region.polygons()[p];
    for (size_t i = 0; i <= polygon.size(); ++i) {
      if (i > 0) out += ", ";
      const Point& v = polygon.vertex(i % polygon.size());
      out += FormatCoordinate(v.x);
      out += ' ';
      out += FormatCoordinate(v.y);
    }
    out += "))";
  }
  out += ")";
  return out;
}

Result<Region> RegionFromWkt(std::string_view wkt) {
  return WktParser(wkt).Parse();
}

}  // namespace cardir
