#include "geometry/primitives.h"

#include <algorithm>
#include <cmath>

#include "geometry/robust.h"

namespace cardir {
namespace {

// Sign of the orientation of (a, b, c): +1 ccw, -1 cw, 0 collinear.
// Exact for all double inputs (geometry/robust.h), so the intersection
// predicates never misclassify nearly-collinear configurations.
int OrientSign(const Point& a, const Point& b, const Point& c) {
  return RobustOrientSign(a, b, c);
}

bool InClosedBox(const Point& p, const Point& a, const Point& b) {
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool OnSegment(const Point& p, const Segment& s) {
  return OrientSign(s.a, s.b, p) == 0 && InClosedBox(p, s.a, s.b);
}

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  const int d1 = OrientSign(t.a, t.b, s.a);
  const int d2 = OrientSign(t.a, t.b, s.b);
  const int d3 = OrientSign(s.a, s.b, t.a);
  const int d4 = OrientSign(s.a, s.b, t.b);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && InClosedBox(s.a, t.a, t.b)) return true;
  if (d2 == 0 && InClosedBox(s.b, t.a, t.b)) return true;
  if (d3 == 0 && InClosedBox(t.a, s.a, s.b)) return true;
  if (d4 == 0 && InClosedBox(t.b, s.a, s.b)) return true;
  return false;
}

bool SegmentsProperlyCross(const Segment& s, const Segment& t) {
  const int d1 = OrientSign(t.a, t.b, s.a);
  const int d2 = OrientSign(t.a, t.b, s.b);
  const int d3 = OrientSign(s.a, s.b, t.a);
  const int d4 = OrientSign(s.a, s.b, t.b);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

std::optional<Point> ProperIntersection(const Segment& s, const Segment& t) {
  if (!SegmentsProperlyCross(s, t)) return std::nullopt;
  const Point r = s.Direction();
  const Point q = t.Direction();
  const double denom = Cross(r, q);
  // denom != 0 is guaranteed by the proper-crossing test.
  const double u = Cross(t.a - s.a, q) / denom;
  return s.At(u);
}

double PointSegmentDistance(const Point& p, const Segment& s) {
  const Point d = s.Direction();
  const double len2 = Dot(d, d);
  // cardir-analyzer: allow(float-eq): exact-zero guard before division
  if (len2 == 0.0) return Distance(p, s.a);
  const double t = std::clamp(Dot(p - s.a, d) / len2, 0.0, 1.0);
  return Distance(p, s.At(t));
}

}  // namespace cardir
