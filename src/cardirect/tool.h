// The CARDIRECT command-line tool (paper §4, sans GUI).
//
// Subcommands:
//   show <config.xml>                      list regions and stored relations
//   relations <config.xml> [out.xml]       compute all pairwise relations
//                                          (Fig. 12); optionally save back
//   percent <config.xml> <primary> <ref>   percentage matrix (Fig. 12 right)
//   query <config.xml> <query>             evaluate a §4 query
//   validate <config.xml>                  strict geometry validation
//   demo <out.xml>                         write a small sample configuration

#ifndef CARDIR_CARDIRECT_TOOL_H_
#define CARDIR_CARDIRECT_TOOL_H_

#include <ostream>
#include <string>
#include <vector>

namespace cardir {

/// Runs the tool; returns the process exit code. Output goes to `out`,
/// errors/usage to `err`.
int RunCardirectTool(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err);

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_TOOL_H_
