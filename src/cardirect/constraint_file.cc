#include "cardirect/constraint_file.h"

#include <map>

#include "util/string_util.h"

namespace cardir {

Result<ConstraintNetwork> ParseConstraintFile(std::string_view text) {
  ConstraintNetwork network;
  std::map<std::string, int> variables;
  auto variable_of = [&network, &variables](const std::string& name) {
    auto it = variables.find(name);
    if (it == variables.end()) {
      it = variables.emplace(name, network.AddVariable(name)).first;
    }
    return it->second;
  };

  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line(raw_line);
    // Strip comments and whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = StripWhitespace(line);
    if (line.empty()) continue;
    // Three space-separated fields: primary, relation, reference. The
    // relation may contain spaces only inside braces; normalise by finding
    // the first and last space.
    const size_t first_space = line.find(' ');
    const size_t last_space = line.rfind(' ');
    if (first_space == std::string_view::npos || first_space == last_space) {
      return Status::ParseError(
          StrFormat("line %d: expected '<id> <relation> <id>'", line_number));
    }
    const std::string primary(StripWhitespace(line.substr(0, first_space)));
    const std::string reference(StripWhitespace(line.substr(last_space + 1)));
    const std::string_view relation_text = StripWhitespace(
        line.substr(first_space + 1, last_space - first_space - 1));
    if (primary.empty() || reference.empty() || relation_text.empty()) {
      return Status::ParseError(
          StrFormat("line %d: expected '<id> <relation> <id>'", line_number));
    }
    if (primary == reference) {
      return Status::ParseError(
          StrFormat("line %d: self-constraints are not supported",
                    line_number));
    }
    auto relation = DisjunctiveRelation::Parse(relation_text);
    if (!relation.ok()) {
      return Status::ParseError(StrFormat("line %d: %s", line_number,
                                          relation.status().message().c_str()));
    }
    // Sequenced explicitly: argument evaluation order is unspecified, and
    // variable creation order must follow appearance order.
    const int primary_var = variable_of(primary);
    const int reference_var = variable_of(reference);
    const Status added =
        network.AddConstraint(primary_var, reference_var, *relation);
    if (!added.ok()) {
      return Status::ParseError(
          StrFormat("line %d: %s", line_number, added.message().c_str()));
    }
  }
  if (network.variable_count() == 0) {
    return Status::ParseError("no constraints found");
  }
  return network;
}

std::string FormatNetworkModel(const ConstraintNetwork& network,
                               const NetworkModel& model) {
  std::string out;
  for (int v = 0; v < network.variable_count(); ++v) {
    const Region& region = model.regions[static_cast<size_t>(v)];
    out += StrFormat("%s: %zu rectangle(s)\n",
                     network.variable_name(v).c_str(),
                     region.polygon_count());
    for (const Polygon& polygon : region.polygons()) {
      const Box box = polygon.BoundingBox();
      out += StrFormat("  [%g, %g] x [%g, %g]\n", box.min_x(), box.max_x(),
                       box.min_y(), box.max_y());
    }
  }
  return out;
}

}  // namespace cardir
