// Textual constraint networks for the `cardirect check` subcommand: a
// line-oriented format for cardinal direction constraint sets, the input of
// the consistency service summarised in the paper's §2 (after [21,22]).
//
//   # comment / blank lines ignored
//   a S b            # basic relation
//   b {N, N:NE} c    # disjunctive relation (no spaces inside one relation)
//
// Variables are created on first use, in order of appearance.

#ifndef CARDIR_CARDIRECT_CONSTRAINT_FILE_H_
#define CARDIR_CARDIRECT_CONSTRAINT_FILE_H_

#include <string>
#include <string_view>

#include "reasoning/constraint_network.h"
#include "util/status.h"

namespace cardir {

/// Parses the format above into a network.
Result<ConstraintNetwork> ParseConstraintFile(std::string_view text);

/// Renders a model as a human-readable listing (one region per variable,
/// with its rectangles).
std::string FormatNetworkModel(const ConstraintNetwork& network,
                               const NetworkModel& model);

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_CONSTRAINT_FILE_H_
