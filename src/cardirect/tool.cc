#include "cardirect/tool.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cardirect/constraint_file.h"
#include "cardirect/query.h"
#include "cardirect/xml.h"
#include "geometry/wkt.h"
#include "index/directional_query.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "reasoning/tables.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {
namespace {

constexpr const char* kUsage =
    "usage: cardirect [--stats[=json|prom]] [--trace-out=FILE] "
    "[--flight-record=FILE] [--profile=FILE] <command> [args]\n"
    "  --stats[=FORMAT]   after the command, print the metric counters the\n"
    "                     run incremented (table, json, or prom[etheus])\n"
    "  --trace-out=FILE   record trace spans and write Chrome trace_event\n"
    "                     JSON to FILE (open in chrome://tracing/Perfetto)\n"
    "  --flight-record=FILE\n"
    "                     keep a ring of recent engine events and write it\n"
    "                     (plus a metrics snapshot) to FILE on crash\n"
    "                     (SIGSEGV/SIGABRT/SIGBUS) or on clean exit\n"
    "  --profile=FILE     sample wall-clock stacks while the command runs\n"
    "                     and write collapsed (flamegraph) lines to FILE\n"
    "  --profile-hz=N     sampling rate for --profile (default 997)\n"
    "  create <out.xml> [name] [image]      start an empty configuration\n"
    "  add-region <xml> <id> <color> <x,y> <x,y> <x,y>...\n"
    "                                       annotate a polygon region\n"
    "  add-polygon <xml> <id> <x,y>...      extend a region (REG*)\n"
    "  add-wkt <xml> <id> <color> <wkt>     annotate a region from WKT\n"
    "  export-wkt <xml> <id>                print a region as WKT\n"
    "  remove-region <xml> <id>             delete a region\n"
    "  show <config.xml>                    list regions and stored relations\n"
    "  relations <config.xml> [out.xml] [--threads N]\n"
    "                                       compute all pairwise relations\n"
    "                                       on the batch engine (N=0 uses\n"
    "                                       all hardware threads)\n"
    "  percent <config.xml> <primary> <ref> percentage matrix\n"
    "  related <config.xml> <ref-id> <rel>  regions related to <ref-id> by\n"
    "                                       the (disjunctive) relation,\n"
    "                                       via the R-tree index\n"
    "  query <config.xml> <query>           evaluate a query, e.g.\n"
    "      '(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b'\n"
    "  validate <config.xml>                strict geometry validation\n"
    "  demo <out.xml>                       write a sample configuration\n"
    "  check <constraints.txt>              decide consistency of a\n"
    "                                       cardinal-direction constraint\n"
    "                                       network; prints a model\n"
    "  tables                               print the reasoning tables\n";

int Fail(std::ostream& err, const Status& status) {
  err << "cardirect: " << status << "\n";
  return 1;
}

// Parses "x,y" vertex arguments into a polygon ring.
Result<Polygon> ParseVertexArgs(const std::vector<std::string>& args,
                                size_t first) {
  Polygon polygon;
  for (size_t i = first; i < args.size(); ++i) {
    const std::vector<std::string> pieces = StrSplit(args[i], ',');
    if (pieces.size() != 2) {
      return Status::ParseError("vertex '" + args[i] +
                                "' is not of the form x,y");
    }
    CARDIR_ASSIGN_OR_RETURN(double x, ParseDouble(pieces[0]));
    CARDIR_ASSIGN_OR_RETURN(double y, ParseDouble(pieces[1]));
    polygon.AddVertex(Point(x, y));
  }
  if (polygon.size() < 3) {
    return Status::ParseError("a polygon needs at least 3 vertices");
  }
  return polygon;
}

int CmdCreate(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  Configuration config(args.size() > 2 ? args[2] : "untitled",
                       args.size() > 3 ? args[3] : "");
  const Status status = SaveConfiguration(config, args[1]);
  if (!status.ok()) return Fail(err, status);
  out << "created " << args[1] << "\n";
  return 0;
}

int CmdAddRegion(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(args[1]);
  if (!config.ok()) return Fail(err, config.status());
  Result<Polygon> polygon = ParseVertexArgs(args, 4);
  if (!polygon.ok()) return Fail(err, polygon.status());
  AnnotatedRegion region;
  region.id = args[2];
  region.name = args[2];
  region.color = args[3];
  region.geometry.AddPolygon(*std::move(polygon));
  Status status = config->AddRegion(std::move(region));
  if (!status.ok()) return Fail(err, status);
  status = SaveConfiguration(*config, args[1]);
  if (!status.ok()) return Fail(err, status);
  out << "added region " << args[2] << "\n";
  return 0;
}

int CmdAddPolygon(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(args[1]);
  if (!config.ok()) return Fail(err, config.status());
  Result<Polygon> polygon = ParseVertexArgs(args, 3);
  if (!polygon.ok()) return Fail(err, polygon.status());
  Status status = config->AddPolygonToRegion(args[2], *std::move(polygon));
  if (!status.ok()) return Fail(err, status);
  status = SaveConfiguration(*config, args[1]);
  if (!status.ok()) return Fail(err, status);
  out << "extended region " << args[2] << "\n";
  return 0;
}

int CmdAddWkt(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(args[1]);
  if (!config.ok()) return Fail(err, config.status());
  Result<Region> geometry = RegionFromWkt(args[4]);
  if (!geometry.ok()) return Fail(err, geometry.status());
  AnnotatedRegion region;
  region.id = args[2];
  region.name = args[2];
  region.color = args[3];
  region.geometry = *std::move(geometry);
  Status status = config->AddRegion(std::move(region));
  if (!status.ok()) return Fail(err, status);
  status = SaveConfiguration(*config, args[1]);
  if (!status.ok()) return Fail(err, status);
  out << "added region " << args[2] << " from WKT\n";
  return 0;
}

int CmdExportWkt(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(args[1]);
  if (!config.ok()) return Fail(err, config.status());
  const AnnotatedRegion* region = config->FindRegion(args[2]);
  if (region == nullptr) {
    return Fail(err, Status::NotFound("no region with id '" + args[2] + "'"));
  }
  out << ToWkt(region->geometry) << "\n";
  return 0;
}

int CmdRemoveRegion(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(args[1]);
  if (!config.ok()) return Fail(err, config.status());
  Status status = config->RemoveRegion(args[2]);
  if (!status.ok()) return Fail(err, status);
  status = SaveConfiguration(*config, args[1]);
  if (!status.ok()) return Fail(err, status);
  out << "removed region " << args[2] << "\n";
  return 0;
}

int CmdShow(const std::string& path, std::ostream& out, std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(path);
  if (!config.ok()) return Fail(err, config.status());
  out << "Image: " << config->name() << " (file: " << config->image_file()
      << ")\n";
  for (const AnnotatedRegion& region : config->regions()) {
    out << StrFormat("  region %-12s name=%-16s color=%-8s polygons=%zu "
                     "edges=%zu area=%.2f\n",
                     region.id.c_str(), region.name.c_str(),
                     region.color.c_str(), region.geometry.polygon_count(),
                     region.geometry.TotalEdges(), region.geometry.Area());
  }
  if (config->has_relations()) {
    out << "Stored relations:\n";
    config->ForEachRelation([&out](const std::string& primary_id,
                                   const std::string& reference_id,
                                   const CardinalRelation& relation) {
      out << "  " << primary_id << " " << relation.ToString() << " "
          << reference_id << "\n";
    });
  }
  return 0;
}

int CmdRelations(const std::string& path, const std::string& save_path,
                 const EngineOptions& options, std::ostream& out,
                 std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(path);
  if (!config.ok()) return Fail(err, config.status());
  EngineStats stats;
  Status status = config->ComputeAllRelations(options, &stats);
  if (!status.ok()) return Fail(err, status);
  config->ForEachRelation([&out](const std::string& primary_id,
                                 const std::string& reference_id,
                                 const CardinalRelation& relation) {
    out << primary_id << " " << relation.ToString() << " " << reference_id
        << "\n";
  });
  if (stats.threads_used > 1) {
    out << StrFormat(
        "computed %zu relations on %d threads (%zu from mbbs alone)\n",
        stats.total_pairs, stats.threads_used, stats.prefiltered_pairs);
  }
  if (!save_path.empty()) {
    status = SaveConfiguration(*config, save_path);
    if (!status.ok()) return Fail(err, status);
    out << "saved: " << save_path << "\n";
  }
  return 0;
}

int CmdPercent(const std::string& path, const std::string& primary,
               const std::string& reference, std::ostream& out,
               std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(path);
  if (!config.ok()) return Fail(err, config.status());
  Result<PercentageMatrix> matrix =
      config->ComputePercentages(primary, reference);
  if (!matrix.ok()) return Fail(err, matrix.status());
  out << primary << " w.r.t. " << reference << ":\n"
      << matrix->ToString() << "\n";
  return 0;
}

int CmdQuery(const std::string& path, const std::string& query_text,
             std::ostream& out, std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(path);
  if (!config.ok()) return Fail(err, config.status());
  Result<QueryResult> result = EvaluateQuery(*config, query_text);
  if (!result.ok()) return Fail(err, result.status());
  out << "(" << StrJoin(result->variables, ", ") << ")\n";
  for (const QueryRow& row : result->rows) {
    out << "(" << StrJoin(row.region_ids, ", ") << ")\n";
  }
  out << result->rows.size() << " row(s)\n";
  return 0;
}

int CmdValidate(const std::string& path, std::ostream& out,
                std::ostream& err) {
  Result<Configuration> config = LoadConfiguration(path);
  if (!config.ok()) return Fail(err, config.status());
  bool all_ok = true;
  for (const AnnotatedRegion& region : config->regions()) {
    const Status status = region.geometry.ValidateStrict();
    if (status.ok()) {
      out << "ok:   " << region.id << "\n";
    } else {
      out << "BAD:  " << region.id << ": " << status.message() << "\n";
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

int CmdDemo(const std::string& path, std::ostream& out, std::ostream& err) {
  Configuration config("demo", "demo-map.png");
  auto add = [&config](const std::string& id, const std::string& color,
                       Polygon polygon) {
    AnnotatedRegion region;
    region.id = id;
    region.name = id;
    region.color = color;
    region.geometry.AddPolygon(std::move(polygon));
    CARDIR_CHECK_OK(config.AddRegion(std::move(region)));
  };
  add("lake", "blue", MakeRectangle(40, 40, 60, 60));
  add("forest", "green",
      Polygon({Point(10, 90), Point(35, 95), Point(30, 70), Point(5, 75)}));
  add("city", "red",
      Polygon({Point(70, 20), Point(90, 25), Point(85, 5), Point(65, 10)}));
  Status status = config.ComputeAllRelations();
  if (!status.ok()) return Fail(err, status);
  status = SaveConfiguration(config, path);
  if (!status.ok()) return Fail(err, status);
  out << "wrote demo configuration: " << path << "\n";
  return 0;
}

int DispatchCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  if (command == "create" && args.size() >= 2 && args.size() <= 4) {
    return CmdCreate(args, out, err);
  }
  if (command == "add-region" && args.size() >= 7) {
    return CmdAddRegion(args, out, err);
  }
  if (command == "add-polygon" && args.size() >= 6) {
    return CmdAddPolygon(args, out, err);
  }
  if (command == "add-wkt" && args.size() == 5) {
    return CmdAddWkt(args, out, err);
  }
  if (command == "export-wkt" && args.size() == 3) {
    return CmdExportWkt(args, out, err);
  }
  if (command == "remove-region" && args.size() == 3) {
    return CmdRemoveRegion(args, out, err);
  }
  if (command == "show" && args.size() == 2) {
    return CmdShow(args[1], out, err);
  }
  if (command == "relations" && args.size() >= 2) {
    // Positional args (path, optional out.xml) with a --threads N flag
    // accepted anywhere after the command.
    std::vector<std::string> positional;
    EngineOptions options;
    for (size_t i = 1; i < args.size(); ++i) {
      std::string value;
      bool has_value = false;
      if (args[i] == "--threads") {
        if (i + 1 >= args.size()) {
          return Fail(err, Status::InvalidArgument("--threads needs a value"));
        }
        value = args[++i];
        has_value = true;
      } else if (args[i].rfind("--threads=", 0) == 0) {
        value = args[i].substr(std::string("--threads=").size());
        has_value = true;
      }
      if (has_value) {
        Result<int64_t> threads = ParseInt(value);
        if (!threads.ok() || *threads < 0) {
          return Fail(err, Status::InvalidArgument(
                               "--threads needs a non-negative integer"));
        }
        options.threads = static_cast<int>(*threads);
      } else {
        positional.push_back(args[i]);
      }
    }
    if (positional.size() < 1 || positional.size() > 2) {
      err << kUsage;
      return 2;
    }
    return CmdRelations(positional[0],
                        positional.size() == 2 ? positional[1] : "", options,
                        out, err);
  }
  if (command == "percent" && args.size() == 4) {
    return CmdPercent(args[1], args[2], args[3], out, err);
  }
  if (command == "query" && args.size() == 3) {
    return CmdQuery(args[1], args[2], out, err);
  }
  if (command == "related" && args.size() == 4) {
    Result<Configuration> config = LoadConfiguration(args[1]);
    if (!config.ok()) return Fail(err, config.status());
    Result<DisjunctiveRelation> relation = DisjunctiveRelation::Parse(args[3]);
    if (!relation.ok()) return Fail(err, relation.status());
    Result<DirectionalIndex> index = DirectionalIndex::Build(*config);
    if (!index.ok()) return Fail(err, index.status());
    DirectionalQueryStats stats;
    Result<std::vector<std::string>> results =
        index->FindMatching(args[2], *relation, &stats);
    if (!results.ok()) return Fail(err, results.status());
    for (const std::string& id : *results) out << id << "\n";
    out << results->size() << " region(s); index pruned "
        << (config->regions().size() - 1 - stats.refined) << " of "
        << config->regions().size() - 1 << " candidates\n";
    return 0;
  }
  if (command == "validate" && args.size() == 2) {
    return CmdValidate(args[1], out, err);
  }
  if (command == "demo" && args.size() == 2) {
    return CmdDemo(args[1], out, err);
  }
  if (command == "check" && args.size() == 2) {
    std::ifstream file(args[1]);
    if (!file) {
      return Fail(err, Status::IoError("cannot open '" + args[1] + "'"));
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Result<ConstraintNetwork> network = ParseConstraintFile(buffer.str());
    if (!network.ok()) return Fail(err, network.status());
    Result<NetworkModel> model = network->Solve();
    if (model.ok()) {
      out << "CONSISTENT\n" << FormatNetworkModel(*network, *model);
      return 0;
    }
    if (model.status().code() == StatusCode::kInconsistent) {
      out << "INCONSISTENT: " << model.status().message() << "\n";
      return 1;
    }
    return Fail(err, model.status());
  }
  if (command == "tables" && args.size() == 1) {
    out << "=== Inverses of the single-tile relations ===\n"
        << SingleTileInverseTable() << "\n"
        << "=== Single-tile composition table ===\n"
        << SingleTileCompositionTable() << "\n"
        << InverseTableStatistics() << "\n";
    return 0;
  }
  err << kUsage;
  return 2;
}

enum class StatsFormat { kNone, kTable, kJson, kPrometheus };

}  // namespace

int RunCardirectTool(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  // Observability flags are global: accepted anywhere on the command line,
  // for every subcommand.
  StatsFormat stats_format = StatsFormat::kNone;
  std::string trace_path;
  std::string flight_record_path;
  std::string profile_path;
  double profile_hz = obs::ProfileOptions().hz;
  std::vector<std::string> command_args;
  command_args.reserve(args.size());
  for (const std::string& arg : args) {
    if (arg == "--stats" || arg == "--stats=table") {
      stats_format = StatsFormat::kTable;
    } else if (arg == "--stats=json") {
      stats_format = StatsFormat::kJson;
    } else if (arg == "--stats=prom" || arg == "--stats=prometheus") {
      stats_format = StatsFormat::kPrometheus;
    } else if (arg.rfind("--stats=", 0) == 0) {
      return Fail(err, Status::InvalidArgument(
                           "--stats accepts table, json, or prom, got '" +
                           arg.substr(std::string("--stats=").size()) + "'"));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-out=").size());
      if (trace_path.empty()) {
        return Fail(err,
                    Status::InvalidArgument("--trace-out needs a file name"));
      }
    } else if (arg.rfind("--flight-record=", 0) == 0) {
      flight_record_path = arg.substr(std::string("--flight-record=").size());
      if (flight_record_path.empty()) {
        return Fail(err, Status::InvalidArgument(
                             "--flight-record needs a file name"));
      }
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_path = arg.substr(std::string("--profile=").size());
      if (profile_path.empty()) {
        return Fail(err,
                    Status::InvalidArgument("--profile needs a file name"));
      }
    } else if (arg.rfind("--profile-hz=", 0) == 0) {
      const std::string value = arg.substr(std::string("--profile-hz=").size());
      char* end = nullptr;
      profile_hz = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' ||
          !(profile_hz > 0)) {
        return Fail(err, Status::InvalidArgument(
                             "--profile-hz needs a positive number, got '" +
                             value + "'"));
      }
    } else {
      command_args.push_back(arg);
    }
  }

  if (!flight_record_path.empty()) {
#ifdef CARDIR_OBS_ENABLED
    // Crash handlers + the log tail go in before the command so the ring
    // holds the run's own history; the clean-exit dump happens below.
    obs::InstallCrashDump(flight_record_path.c_str());
    obs::CaptureLogTail();
#else
    return Fail(err, Status::Unimplemented(
                         "--flight-record requires a build with CARDIR_OBS=ON"));
#endif
  }
  if (!profile_path.empty()) {
    obs::ProfileOptions profile_options;
    profile_options.hz = profile_hz;
    const Status started = obs::StartProfiling(profile_options);
    if (!started.ok()) return Fail(err, started);
  }
  if (!trace_path.empty()) obs::StartTracing();
  const obs::MetricsSnapshot before = stats_format != StatsFormat::kNone
                                          ? obs::CaptureMetrics()
                                          : obs::MetricsSnapshot();

  const int code = DispatchCommand(command_args, out, err);

  if (!profile_path.empty()) {
    obs::StopProfiling();
    const Status written = obs::WriteCollapsedProfile(profile_path);
    if (!written.ok()) return Fail(err, written);
    const obs::ProfileStats pstats = obs::GetProfileStats();
    out << "wrote profile: " << profile_path << " (" << pstats.samples_taken
        << " samples, " << pstats.samples_with_work << " with work)\n";
  }
  if (!flight_record_path.empty()) {
    // Clean-exit dump: the same file the crash handler would have written,
    // so post-mortem tooling reads one format either way.
    if (!obs::DumpFlightRecordToPath(flight_record_path.c_str())) {
      return Fail(err, Status::IoError("cannot write flight record to '" +
                                       flight_record_path + "'"));
    }
    out << "wrote flight record: " << flight_record_path << "\n";
  }
  if (!trace_path.empty()) {
    obs::StopTracing();
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      return Fail(err, Status::IoError("cannot open '" + trace_path +
                                       "' for writing"));
    }
    obs::WriteChromeTrace(trace_file);
    out << "wrote trace: " << trace_path << "\n";
  }
  if (stats_format != StatsFormat::kNone) {
    const obs::MetricsSnapshot delta = obs::CaptureMetrics().Diff(before);
    switch (stats_format) {
      case StatsFormat::kTable:
        out << "=== metrics (this run) ===\n" << obs::FormatMetricsTable(delta);
        break;
      case StatsFormat::kJson:
        out << obs::FormatMetricsJson(delta);
        break;
      case StatsFormat::kPrometheus:
        out << obs::FormatMetricsPrometheus(delta);
        break;
      case StatsFormat::kNone:
        break;
    }
  }
  return code;
}

}  // namespace cardir
