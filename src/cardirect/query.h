// The CARDIRECT query language (paper §4), extended with the combinations
// §5 lists as future work (topological and distance relations, richer
// thematic conditions).
//
// A query q = {(x1, ..., xn) | φ(x1, ..., xn)} returns all tuples of
// configuration regions satisfying the conjunctive condition φ, whose atoms
// are:
//   * identity:    x = Attica           (region id, or name as fallback)
//   * thematic:    color(x) = red       (also name(x) = value)
//   * direction:   x R y                with R a basic relation ("B:S:SW")
//                                       or a disjunctive one ("{N, N:NE}")
//   * topological: x overlap y          (RCC8: disjoint, meet, overlap,
//                                       equal, inside, coveredBy, contains,
//                                       covers — extensions/topology.h)
//   * distance:    x close y            (veryClose, close, commensurate,
//                                       far, veryFar — extensions/distance.h)
//   * numeric:     area(x) < 100, distance(x, y) < 25
//   * percentage:  percent(x, NE, y) > 50   (the Compute-CDR% matrix entry:
//                                           the share of x's area in the NE
//                                           tile of y, in percent)
//
// Concrete syntax (the paper's query, verbatim modulo ASCII):
//   (a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b
//
// Direction atoms are evaluated against the configuration's stored relation
// records when present (the XML's <Relation> elements) and computed on the
// fly with Compute-CDR otherwise; topological and distance atoms are always
// computed from the geometry (and cached per pair within one evaluation).

#ifndef CARDIR_CARDIRECT_QUERY_H_
#define CARDIR_CARDIRECT_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "cardirect/model.h"
#include "extensions/distance.h"
#include "extensions/topology.h"
#include "reasoning/disjunctive_relation.h"
#include "util/status.h"

namespace cardir {

/// x = <region id or name>.
struct IdentityCondition {
  std::string variable;
  std::string region;
};

/// attribute(x) = value; attribute ∈ {color, name}.
struct ThematicCondition {
  std::string variable;
  std::string attribute;
  std::string value;
};

/// x R y (possibly disjunctive R).
struct DirectionCondition {
  std::string primary_variable;
  std::string reference_variable;
  DisjunctiveRelation relation;
};

/// x overlap y, x inside y, ... (RCC8 keyword atoms).
struct TopologyCondition {
  std::string primary_variable;
  std::string reference_variable;
  TopologicalRelation relation;
};

/// x close y, x far y, ... (qualitative distance keyword atoms).
struct DistanceCondition {
  std::string primary_variable;
  std::string reference_variable;
  DistanceRelation relation;
};

/// area(x) < v | area(x) > v | distance(x, y) < v | distance(x, y) > v.
struct NumericCondition {
  enum class Kind { kArea, kDistance };
  Kind kind;
  std::string primary_variable;
  std::string reference_variable;  ///< Empty for kArea.
  bool less_than = true;           ///< false means strictly greater.
  double value = 0.0;
};

/// percent(x, T, y) < v | > v: the Compute-CDR% percentage of x falling in
/// tile T of y.
struct PercentCondition {
  std::string primary_variable;
  Tile tile;
  std::string reference_variable;
  bool less_than = true;
  double value = 0.0;
};

/// A parsed query.
struct Query {
  std::vector<std::string> variables;
  std::vector<IdentityCondition> identity_conditions;
  std::vector<ThematicCondition> thematic_conditions;
  std::vector<DirectionCondition> direction_conditions;
  std::vector<TopologyCondition> topology_conditions;
  std::vector<DistanceCondition> distance_conditions;
  std::vector<NumericCondition> numeric_conditions;
  std::vector<PercentCondition> percent_conditions;

  /// Parses the concrete syntax above. All condition variables must be
  /// declared in the head; unknown tile names and malformed atoms are
  /// rejected.
  static Result<Query> Parse(std::string_view text);
};

/// One result tuple: region ids in variable order.
struct QueryRow {
  std::vector<std::string> region_ids;

  friend bool operator==(const QueryRow& a, const QueryRow& b) {
    return a.region_ids == b.region_ids;
  }
  friend bool operator<(const QueryRow& a, const QueryRow& b) {
    return a.region_ids < b.region_ids;
  }
};

/// All rows, in lexicographic region-id order.
struct QueryResult {
  std::vector<std::string> variables;
  std::vector<QueryRow> rows;
};

/// Evaluates `query` over `configuration`. Distinct variables may bind the
/// same region, except within a direction atom (a region has no cardinal
/// direction relation to itself).
Result<QueryResult> EvaluateQuery(const Configuration& configuration,
                                  const Query& query);

/// Parse-and-evaluate convenience.
Result<QueryResult> EvaluateQuery(const Configuration& configuration,
                                  std::string_view query_text);

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_QUERY_H_
