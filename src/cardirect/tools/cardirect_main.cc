// Entry point of the CARDIRECT command-line tool. See cardirect/tool.h for
// the subcommand reference.

#include <iostream>
#include <string>
#include <vector>

#include "cardirect/tool.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return cardir::RunCardirectTool(args, std::cout, std::cerr);
}
