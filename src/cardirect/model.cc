#include "cardirect/model.h"

#include <algorithm>

#include "core/compute_cdr_percent.h"
#include "util/string_util.h"

namespace cardir {

Status Configuration::AddRegion(AnnotatedRegion region) {
  if (region.id.empty()) {
    return Status::InvalidArgument("region id must not be empty");
  }
  if (FindRegion(region.id) != nullptr) {
    return Status::AlreadyExists("duplicate region id: '" + region.id + "'");
  }
  region.geometry.EnsureClockwise();
  Status status = region.geometry.Validate();
  if (!status.ok()) {
    return Status::InvalidArgument("region '" + region.id +
                                   "': " + status.message());
  }
  if (relation_store() != nullptr) {
    // Keep the computed store complete: resolve the new region's pairs
    // incrementally instead of invalidating n·(n−1) relations.
    PromoteToDelta();
    Result<DeltaResult> applied = delta_->Insert(region.geometry);
    if (!applied.ok()) return applied.status();
  }
  regions_.push_back(std::move(region));
  return Status::Ok();
}

Status Configuration::RemoveRegion(const std::string& id) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&id](const AnnotatedRegion& r) { return r.id == id; });
  if (it == regions_.end()) {
    return Status::NotFound("no region with id '" + id + "'");
  }
  if (relation_store() != nullptr) {
    // Delta-maintain the computed store: only the removed region's pairs
    // go, everything else keeps its stored relation.
    PromoteToDelta();
    const size_t index = static_cast<size_t>(it - regions_.begin());
    Result<DeltaResult> applied = delta_->Remove(index);
    if (!applied.ok()) return applied.status();
    regions_.erase(it);
    return Status::Ok();
  }
  regions_.erase(it);
  relations_.erase(
      std::remove_if(relations_.begin(), relations_.end(),
                     [&id](const RelationRecord& rec) {
                       return rec.primary_id == id || rec.reference_id == id;
                     }),
      relations_.end());
  return Status::Ok();
}

Status Configuration::AddPolygonToRegion(const std::string& id,
                                         Polygon polygon) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&id](const AnnotatedRegion& r) { return r.id == id; });
  if (it == regions_.end()) {
    return Status::NotFound("no region with id '" + id + "'");
  }
  polygon.EnsureClockwise();
  CARDIR_RETURN_IF_ERROR(polygon.Validate());
  it->geometry.AddPolygon(std::move(polygon));
  if (relation_store() != nullptr) {
    // Re-resolve just this region's dirty pairs against the grown geometry.
    PromoteToDelta();
    const size_t index = static_cast<size_t>(it - regions_.begin());
    Result<DeltaResult> applied = delta_->Move(index, it->geometry);
    if (!applied.ok()) return applied.status();
    return Status::Ok();
  }
  // XML-loaded records involving this region are stale now.
  relations_.erase(
      std::remove_if(relations_.begin(), relations_.end(),
                     [&id](const RelationRecord& rec) {
                       return rec.primary_id == id || rec.reference_id == id;
                     }),
      relations_.end());
  return Status::Ok();
}

const AnnotatedRegion* Configuration::FindRegion(const std::string& id) const {
  for (const AnnotatedRegion& region : regions_) {
    if (region.id == id) return &region;
  }
  return nullptr;
}

std::vector<const AnnotatedRegion*> Configuration::RegionsByColor(
    const std::string& color) const {
  std::vector<const AnnotatedRegion*> out;
  for (const AnnotatedRegion& region : regions_) {
    if (region.color == color) out.push_back(&region);
  }
  return out;
}

Status Configuration::ComputeAllRelations(const EngineOptions& options,
                                          EngineStats* stats) {
  std::vector<const Region*> geometries;
  geometries.reserve(regions_.size());
  for (const AnnotatedRegion& region : regions_) {
    geometries.push_back(&region.geometry);
  }
  // Sweep join instead of all-pairs: the result is held as profile +
  // explicit-pair overlay (indices parallel regions_), not as n·(n−1)
  // id-keyed records — at engine scale the records themselves were the
  // dominant allocation.
  Result<RelationStore> store =
      ComputeRelationStore(geometries, options, stats);
  if (!store.ok()) return store.status();
  store_ = std::move(*store);
  delta_.reset();
  relations_.clear();
  return Status::Ok();
}

void Configuration::PromoteToDelta() {
  if (delta_.has_value() || !store_.has_value()) return;
  std::vector<Region> geometries;
  geometries.reserve(regions_.size());
  for (const AnnotatedRegion& region : regions_) {
    geometries.push_back(region.geometry);
  }
  delta_.emplace(
      DeltaEngine::Adopt(std::move(*store_), std::move(geometries)));
  store_.reset();
}

std::optional<CardinalRelation> Configuration::StoredRelation(
    const std::string& primary_id, const std::string& reference_id) const {
  const RelationStore* store = relation_store();
  if (store != nullptr) {
    size_t primary = regions_.size(), reference = regions_.size();
    for (size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].id == primary_id) primary = i;
      if (regions_[i].id == reference_id) reference = i;
    }
    if (primary == regions_.size() || reference == regions_.size() ||
        primary == reference) {
      return std::nullopt;
    }
    return store->Relation(primary, reference);
  }
  for (const RelationRecord& record : relations_) {
    if (record.primary_id == primary_id &&
        record.reference_id == reference_id) {
      return record.relation;
    }
  }
  return std::nullopt;
}

Result<PercentageMatrix> Configuration::ComputePercentages(
    const std::string& primary_id, const std::string& reference_id) const {
  const AnnotatedRegion* primary = FindRegion(primary_id);
  if (primary == nullptr) {
    return Status::NotFound("no region with id '" + primary_id + "'");
  }
  const AnnotatedRegion* reference = FindRegion(reference_id);
  if (reference == nullptr) {
    return Status::NotFound("no region with id '" + reference_id + "'");
  }
  return ComputeCdrPercent(primary->geometry, reference->geometry);
}

}  // namespace cardir
