#include "cardirect/model.h"

#include <algorithm>

#include "core/compute_cdr_percent.h"
#include "util/string_util.h"

namespace cardir {

Status Configuration::AddRegion(AnnotatedRegion region) {
  if (region.id.empty()) {
    return Status::InvalidArgument("region id must not be empty");
  }
  if (FindRegion(region.id) != nullptr) {
    return Status::AlreadyExists("duplicate region id: '" + region.id + "'");
  }
  region.geometry.EnsureClockwise();
  Status status = region.geometry.Validate();
  if (!status.ok()) {
    return Status::InvalidArgument("region '" + region.id +
                                   "': " + status.message());
  }
  regions_.push_back(std::move(region));
  return Status::Ok();
}

Status Configuration::RemoveRegion(const std::string& id) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&id](const AnnotatedRegion& r) { return r.id == id; });
  if (it == regions_.end()) {
    return Status::NotFound("no region with id '" + id + "'");
  }
  regions_.erase(it);
  relations_.erase(
      std::remove_if(relations_.begin(), relations_.end(),
                     [&id](const RelationRecord& rec) {
                       return rec.primary_id == id || rec.reference_id == id;
                     }),
      relations_.end());
  return Status::Ok();
}

Status Configuration::AddPolygonToRegion(const std::string& id,
                                         Polygon polygon) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&id](const AnnotatedRegion& r) { return r.id == id; });
  if (it == regions_.end()) {
    return Status::NotFound("no region with id '" + id + "'");
  }
  polygon.EnsureClockwise();
  CARDIR_RETURN_IF_ERROR(polygon.Validate());
  it->geometry.AddPolygon(std::move(polygon));
  // Stored relations involving this region are stale now.
  relations_.erase(
      std::remove_if(relations_.begin(), relations_.end(),
                     [&id](const RelationRecord& rec) {
                       return rec.primary_id == id || rec.reference_id == id;
                     }),
      relations_.end());
  return Status::Ok();
}

const AnnotatedRegion* Configuration::FindRegion(const std::string& id) const {
  for (const AnnotatedRegion& region : regions_) {
    if (region.id == id) return &region;
  }
  return nullptr;
}

std::vector<const AnnotatedRegion*> Configuration::RegionsByColor(
    const std::string& color) const {
  std::vector<const AnnotatedRegion*> out;
  for (const AnnotatedRegion& region : regions_) {
    if (region.color == color) out.push_back(&region);
  }
  return out;
}

Status Configuration::ComputeAllRelations(const EngineOptions& options,
                                          EngineStats* stats) {
  std::vector<const Region*> geometries;
  geometries.reserve(regions_.size());
  for (const AnnotatedRegion& region : regions_) {
    geometries.push_back(&region.geometry);
  }
  Result<PairMatrix> pairs = ComputeAllPairs(geometries, options, stats);
  if (!pairs.ok()) return pairs.status();
  std::vector<RelationRecord> records;
  records.reserve(pairs->size());
  for (const PairRelation& pair : *pairs) {
    records.push_back({regions_[pair.primary].id,
                       regions_[pair.reference].id, pair.relation});
  }
  relations_ = std::move(records);
  return Status::Ok();
}

std::optional<CardinalRelation> Configuration::StoredRelation(
    const std::string& primary_id, const std::string& reference_id) const {
  for (const RelationRecord& record : relations_) {
    if (record.primary_id == primary_id &&
        record.reference_id == reference_id) {
      return record.relation;
    }
  }
  return std::nullopt;
}

Result<PercentageMatrix> Configuration::ComputePercentages(
    const std::string& primary_id, const std::string& reference_id) const {
  const AnnotatedRegion* primary = FindRegion(primary_id);
  if (primary == nullptr) {
    return Status::NotFound("no region with id '" + primary_id + "'");
  }
  const AnnotatedRegion* reference = FindRegion(reference_id);
  if (reference == nullptr) {
    return Status::NotFound("no region with id '" + reference_id + "'");
  }
  return ComputeCdrPercent(primary->geometry, reference->geometry);
}

}  // namespace cardir
