// XML persistence for CARDIRECT configurations (paper §4).
//
// The paper stores a configuration as a simple XML document following this
// DTD (quoted verbatim from §4):
//
//   <!ELEMENT Image (Region+, Relation*)>
//   <!ATTLIST Image name CDATA #IMPLIED file CDATA #IMPLIED>
//   <!ELEMENT Region (Polygon*)>
//   <!ATTLIST Region id ID #REQUIRED name CDATA #IMPLIED color CDATA #IMPLIED>
//   <!ELEMENT Polygon (Edge, Edge, Edge, Edge*)>
//   <!ATTLIST Polygon id CDATA #REQUIRED>
//   <!ELEMENT Edge EMPTY>
//   <!ATTLIST Edge x CDATA #REQUIRED y CDATA #REQUIRED>
//   <!ELEMENT Relation EMPTY>
//   <!ATTLIST Relation type CDATA #REQUIRED
//             primary IDREF #REQUIRED reference IDREF #REQUIRED>
//
// (Each Edge element carries one vertex of the polygon ring.) This module
// provides a small from-scratch XML subset parser/writer — elements,
// attributes, comments, declarations, DOCTYPE, the five predefined entities
// and numeric character references — plus the DTD-shaped mapping to
// Configuration.

#ifndef CARDIR_CARDIRECT_XML_H_
#define CARDIR_CARDIRECT_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cardirect/model.h"
#include "util/status.h"

namespace cardir {

/// A parsed XML element.
struct XmlNode {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  ///< Concatenated character data of this element.

  /// Attribute value, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// Attribute value, or `fallback` when absent.
  std::string AttributeOr(std::string_view name, std::string fallback) const;

  /// Child elements with the given tag, in document order.
  std::vector<const XmlNode*> ChildrenNamed(std::string_view tag_name) const;
};

/// Parses a document; returns its root element. Prologue (XML declaration,
/// DOCTYPE with internal subset, comments, processing instructions) is
/// accepted and skipped.
Result<XmlNode> ParseXml(std::string_view input);

/// Serialises a tree. With `pretty`, children are indented two spaces.
std::string WriteXml(const XmlNode& root, bool pretty = true);

/// Escapes &, <, >, ", ' for use in attribute values / character data.
std::string XmlEscape(std::string_view text);

/// Maps a parsed document (DTD shape above) to a Configuration. Region
/// geometry is validated; Relation records referring to unknown region ids
/// are rejected.
Result<Configuration> ConfigurationFromXml(std::string_view xml);

/// Serialises a Configuration to the DTD shape (with xml declaration and
/// DOCTYPE reference).
std::string ConfigurationToXml(const Configuration& configuration);

/// File convenience wrappers.
Status SaveConfiguration(const Configuration& configuration,
                         const std::string& path);
Result<Configuration> LoadConfiguration(const std::string& path);

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_XML_H_
