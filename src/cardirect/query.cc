#include "cardirect/query.h"

#include <algorithm>
#include <cctype>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenType {
  kIdent,      // letters, digits, '_', '.', '-'
  kString,     // "..." (quotes stripped)
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kEquals,
  kLess,
  kGreater,
  kBar,
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
};

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '(': tokens.push_back({TokenType::kLParen, "("}); ++i; continue;
      case ')': tokens.push_back({TokenType::kRParen, ")"}); ++i; continue;
      case '{': tokens.push_back({TokenType::kLBrace, "{"}); ++i; continue;
      case '}': tokens.push_back({TokenType::kRBrace, "}"}); ++i; continue;
      case ',': tokens.push_back({TokenType::kComma, ","}); ++i; continue;
      case ':': tokens.push_back({TokenType::kColon, ":"}); ++i; continue;
      case '=': tokens.push_back({TokenType::kEquals, "="}); ++i; continue;
      case '<': tokens.push_back({TokenType::kLess, "<"}); ++i; continue;
      case '>': tokens.push_back({TokenType::kGreater, ">"}); ++i; continue;
      case '|': tokens.push_back({TokenType::kBar, "|"}); ++i; continue;
      case '"': {
        const size_t end = input.find('"', i + 1);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated string literal in query");
        }
        tokens.push_back(
            {TokenType::kString, std::string(input.substr(i + 1, end - i - 1))});
        i = end + 1;
        continue;
      }
      default: break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
        c == '-') {
      const size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '.' || input[i] == '-')) {
        ++i;
      }
      tokens.push_back(
          {TokenType::kIdent, std::string(input.substr(start, i - start))});
      continue;
    }
    return Status::ParseError(StrFormat("unexpected character '%c' in query", c));
  }
  tokens.push_back({TokenType::kEnd, ""});
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    // Head: ( x1, x2, ... ) |
    CARDIR_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    for (;;) {
      CARDIR_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable name"));
      if (std::find(query.variables.begin(), query.variables.end(), var) !=
          query.variables.end()) {
        return Status::ParseError("duplicate variable '" + var + "'");
      }
      query.variables.push_back(std::move(var));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    CARDIR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    CARDIR_RETURN_IF_ERROR(Expect(TokenType::kBar, "'|'"));
    // Body: condition (',' condition)*
    for (;;) {
      CARDIR_RETURN_IF_ERROR(ParseCondition(&query));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing tokens in query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) {
      return Status::ParseError(StrFormat("expected %s near '%s'", what,
                                          Peek().text.c_str()));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError(StrFormat("expected %s near '%s'", what,
                                          Peek().text.c_str()));
    }
    return Advance().text;
  }

  Result<std::string> ExpectValue() {
    if (Peek().type == TokenType::kString || Peek().type == TokenType::kIdent) {
      return Advance().text;
    }
    return Status::ParseError("expected a value (identifier or string)");
  }

  Status CheckVariable(const Query& query, const std::string& var) {
    if (std::find(query.variables.begin(), query.variables.end(), var) ==
        query.variables.end()) {
      return Status::ParseError("undeclared variable '" + var + "'");
    }
    return Status::Ok();
  }

  // rel: IDENT (':' IDENT)* — every IDENT a tile name.
  Result<CardinalRelation> ParseBasicRelation() {
    CARDIR_ASSIGN_OR_RETURN(std::string first, ExpectIdent("tile name"));
    std::string spec = first;
    while (Peek().type == TokenType::kColon) {
      Advance();
      CARDIR_ASSIGN_OR_RETURN(std::string tile, ExpectIdent("tile name"));
      spec += ':';
      spec += tile;
    }
    return CardinalRelation::Parse(spec);
  }

  // Parses the trailing "< value" / "> value" of a numeric atom.
  Result<std::pair<bool, double>> ParseComparator() {
    bool less_than;
    if (Peek().type == TokenType::kLess) {
      less_than = true;
    } else if (Peek().type == TokenType::kGreater) {
      less_than = false;
    } else {
      return Status::ParseError("expected '<' or '>' in numeric condition");
    }
    Advance();
    CARDIR_ASSIGN_OR_RETURN(std::string number, ExpectIdent("number"));
    CARDIR_ASSIGN_OR_RETURN(double value, ParseDouble(number));
    return std::make_pair(less_than, value);
  }

  Status ParseCondition(Query* query) {
    CARDIR_ASSIGN_OR_RETURN(std::string first, ExpectIdent("condition"));
    if (Peek().type == TokenType::kLParen) {
      Advance();
      CARDIR_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable"));
      CARDIR_RETURN_IF_ERROR(CheckVariable(*query, var));
      if (first == "distance") {
        // distance(x, y) < value
        CARDIR_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
        CARDIR_ASSIGN_OR_RETURN(std::string var2, ExpectIdent("variable"));
        CARDIR_RETURN_IF_ERROR(CheckVariable(*query, var2));
        CARDIR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        CARDIR_ASSIGN_OR_RETURN(auto cmp, ParseComparator());
        query->numeric_conditions.push_back(
            {NumericCondition::Kind::kDistance, var, var2, cmp.first,
             cmp.second});
        return Status::Ok();
      }
      if (first == "percent") {
        // percent(x, TILE, y) < value
        CARDIR_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
        CARDIR_ASSIGN_OR_RETURN(std::string tile_name,
                                ExpectIdent("tile name"));
        Tile tile;
        if (!ParseTile(tile_name, &tile)) {
          return Status::ParseError("unknown tile '" + tile_name +
                                    "' in percent()");
        }
        CARDIR_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
        CARDIR_ASSIGN_OR_RETURN(std::string var2, ExpectIdent("variable"));
        CARDIR_RETURN_IF_ERROR(CheckVariable(*query, var2));
        CARDIR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        if (var == var2) {
          return Status::ParseError(
              "percent() requires two distinct variables");
        }
        CARDIR_ASSIGN_OR_RETURN(auto cmp, ParseComparator());
        query->percent_conditions.push_back(
            {var, tile, var2, cmp.first, cmp.second});
        return Status::Ok();
      }
      CARDIR_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      if (first == "area") {
        // area(x) < value
        CARDIR_ASSIGN_OR_RETURN(auto cmp, ParseComparator());
        query->numeric_conditions.push_back({NumericCondition::Kind::kArea,
                                             var, "", cmp.first, cmp.second});
        return Status::Ok();
      }
      // attribute(x) = value
      CARDIR_RETURN_IF_ERROR(Expect(TokenType::kEquals, "'='"));
      CARDIR_ASSIGN_OR_RETURN(std::string value, ExpectValue());
      if (first != "color" && first != "name") {
        return Status::ParseError(
            "unknown attribute '" + first +
            "' (supported: color, name, area, distance, percent)");
      }
      query->thematic_conditions.push_back({var, first, value});
      return Status::Ok();
    }
    if (Peek().type == TokenType::kEquals) {
      // x = region
      Advance();
      CARDIR_ASSIGN_OR_RETURN(std::string value, ExpectValue());
      CARDIR_RETURN_IF_ERROR(CheckVariable(*query, first));
      query->identity_conditions.push_back({first, value});
      return Status::Ok();
    }
    // Binary atoms: x <relation> y. The relation is a topological keyword,
    // a distance keyword, or a (possibly disjunctive) cardinal relation.
    CARDIR_RETURN_IF_ERROR(CheckVariable(*query, first));
    TopologicalRelation topological;
    DistanceRelation distance;
    const bool is_topological =
        Peek().type == TokenType::kIdent &&
        ParseTopologicalRelation(Peek().text, &topological);
    const bool is_distance = !is_topological &&
                             Peek().type == TokenType::kIdent &&
                             ParseDistanceRelation(Peek().text, &distance);
    DisjunctiveRelation relation;
    if (is_topological || is_distance) {
      Advance();
    } else if (Peek().type == TokenType::kLBrace) {
      Advance();
      for (;;) {
        CARDIR_ASSIGN_OR_RETURN(CardinalRelation basic, ParseBasicRelation());
        relation.Add(basic);
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      CARDIR_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
    } else {
      CARDIR_ASSIGN_OR_RETURN(CardinalRelation basic, ParseBasicRelation());
      relation.Add(basic);
    }
    CARDIR_ASSIGN_OR_RETURN(std::string reference, ExpectIdent("variable"));
    CARDIR_RETURN_IF_ERROR(CheckVariable(*query, reference));
    if (first == reference) {
      return Status::ParseError(
          "binary atoms require two distinct variables");
    }
    if (is_topological) {
      query->topology_conditions.push_back({first, reference, topological});
    } else if (is_distance) {
      query->distance_conditions.push_back({first, reference, distance});
    } else {
      query->direction_conditions.push_back({first, reference, relation});
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(const Configuration& configuration, const Query& query)
      : configuration_(configuration), query_(query) {}

  Result<QueryResult> Run() {
    const size_t num_vars = query_.variables.size();
    // Per-variable candidate sets from unary conditions.
    std::vector<std::vector<const AnnotatedRegion*>> candidates(num_vars);
    for (size_t v = 0; v < num_vars; ++v) {
      CARDIR_ASSIGN_OR_RETURN(candidates[v],
                              CandidatesFor(query_.variables[v]));
    }
    QueryResult result;
    result.variables = query_.variables;
    std::vector<const AnnotatedRegion*> binding(num_vars, nullptr);
    CARDIR_RETURN_IF_ERROR(Search(candidates, 0, &binding, &result));
    std::sort(result.rows.begin(), result.rows.end());
    return result;
  }

 private:
  Result<std::vector<const AnnotatedRegion*>> CandidatesFor(
      const std::string& variable) {
    std::vector<const AnnotatedRegion*> out;
    for (const AnnotatedRegion& region : configuration_.regions()) {
      bool ok = true;
      for (const IdentityCondition& c : query_.identity_conditions) {
        if (c.variable != variable) continue;
        if (region.id != c.region && region.name != c.region) ok = false;
      }
      for (const ThematicCondition& c : query_.thematic_conditions) {
        if (c.variable != variable) continue;
        const std::string& actual =
            c.attribute == "color" ? region.color : region.name;
        if (actual != c.value) ok = false;
      }
      for (const NumericCondition& c : query_.numeric_conditions) {
        if (c.kind != NumericCondition::Kind::kArea ||
            c.primary_variable != variable) {
          continue;
        }
        const double area = region.geometry.Area();
        if (c.less_than ? !(area < c.value) : !(area > c.value)) ok = false;
      }
      if (ok) out.push_back(&region);
    }
    return out;
  }

  // The relation primary R reference: stored record if available, else
  // computed on the fly.
  Result<CardinalRelation> RelationBetween(const AnnotatedRegion* primary,
                                           const AnnotatedRegion* reference) {
    std::optional<CardinalRelation> stored =
        configuration_.StoredRelation(primary->id, reference->id);
    if (stored.has_value()) return *stored;
    return ComputeCdr(primary->geometry, reference->geometry);
  }

  // Checks every binary atom whose variables are both bound, with `latest`
  // being the most recently bound variable index.
  Result<bool> BinaryAtomsHold(
      const std::vector<const AnnotatedRegion*>& binding, size_t latest) {
    // Returns true when this atom must be checked now and both sides bound.
    auto relevant = [&](const std::string& pv, const std::string& rv,
                        size_t* p, size_t* r) {
      *p = VariableIndex(pv);
      *r = VariableIndex(rv);
      if (*p != latest && *r != latest) return false;
      return binding[*p] != nullptr && binding[*r] != nullptr;
    };
    size_t p, r;
    for (const DirectionCondition& c : query_.direction_conditions) {
      if (!relevant(c.primary_variable, c.reference_variable, &p, &r)) {
        continue;
      }
      if (binding[p] == binding[r]) return false;
      CARDIR_ASSIGN_OR_RETURN(CardinalRelation actual,
                              RelationBetween(binding[p], binding[r]));
      if (!c.relation.Contains(actual)) return false;
    }
    for (const TopologyCondition& c : query_.topology_conditions) {
      if (!relevant(c.primary_variable, c.reference_variable, &p, &r)) {
        continue;
      }
      if (binding[p] == binding[r]) return false;
      CARDIR_ASSIGN_OR_RETURN(
          TopologicalRelation actual,
          ComputeTopology(binding[p]->geometry, binding[r]->geometry));
      if (actual != c.relation) return false;
    }
    for (const DistanceCondition& c : query_.distance_conditions) {
      if (!relevant(c.primary_variable, c.reference_variable, &p, &r)) {
        continue;
      }
      if (binding[p] == binding[r]) return false;
      CARDIR_ASSIGN_OR_RETURN(
          DistanceRelation actual,
          ComputeDistanceRelation(binding[p]->geometry,
                                  binding[r]->geometry));
      if (actual != c.relation) return false;
    }
    for (const NumericCondition& c : query_.numeric_conditions) {
      if (c.kind != NumericCondition::Kind::kDistance) continue;
      if (!relevant(c.primary_variable, c.reference_variable, &p, &r)) {
        continue;
      }
      if (binding[p] == binding[r]) return false;
      CARDIR_ASSIGN_OR_RETURN(
          double distance,
          MinimumDistance(binding[p]->geometry, binding[r]->geometry));
      if (c.less_than ? !(distance < c.value) : !(distance > c.value)) {
        return false;
      }
    }
    for (const PercentCondition& c : query_.percent_conditions) {
      if (!relevant(c.primary_variable, c.reference_variable, &p, &r)) {
        continue;
      }
      if (binding[p] == binding[r]) return false;
      CARDIR_ASSIGN_OR_RETURN(
          PercentageMatrix matrix,
          ComputeCdrPercent(binding[p]->geometry, binding[r]->geometry));
      const double percent = matrix.at(c.tile);
      if (c.less_than ? !(percent < c.value) : !(percent > c.value)) {
        return false;
      }
    }
    return true;
  }

  size_t VariableIndex(const std::string& variable) const {
    for (size_t i = 0; i < query_.variables.size(); ++i) {
      if (query_.variables[i] == variable) return i;
    }
    CARDIR_CHECK(false) << "unbound variable slipped through parsing";
    return 0;
  }

  Status Search(const std::vector<std::vector<const AnnotatedRegion*>>& candidates,
                size_t depth, std::vector<const AnnotatedRegion*>* binding,
                QueryResult* result) {
    if (depth == binding->size()) {
      QueryRow row;
      row.region_ids.reserve(binding->size());
      for (const AnnotatedRegion* region : *binding) {
        row.region_ids.push_back(region->id);
      }
      result->rows.push_back(std::move(row));
      return Status::Ok();
    }
    for (const AnnotatedRegion* candidate : candidates[depth]) {
      (*binding)[depth] = candidate;
      CARDIR_ASSIGN_OR_RETURN(bool ok, BinaryAtomsHold(*binding, depth));
      if (ok) {
        CARDIR_RETURN_IF_ERROR(Search(candidates, depth + 1, binding, result));
      }
    }
    (*binding)[depth] = nullptr;
    return Status::Ok();
  }

  const Configuration& configuration_;
  const Query& query_;
};

}  // namespace

Result<Query> Query::Parse(std::string_view text) {
  CARDIR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return QueryParser(std::move(tokens)).Parse();
}

Result<QueryResult> EvaluateQuery(const Configuration& configuration,
                                  const Query& query) {
  return Evaluator(configuration, query).Run();
}

Result<QueryResult> EvaluateQuery(const Configuration& configuration,
                                  std::string_view query_text) {
  CARDIR_ASSIGN_OR_RETURN(Query query, Query::Parse(query_text));
  return EvaluateQuery(configuration, query);
}

}  // namespace cardir
