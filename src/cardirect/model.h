// The CARDIRECT configuration model (paper §4).
//
// A configuration ("Image" in the paper's DTD) is defined upon an image file
// and comprises a set of annotated regions plus the direction relations
// computed between them. Each region has an id, an optional name, a thematic
// color attribute, and a set of polygons.

#ifndef CARDIR_CARDIRECT_MODEL_H_
#define CARDIR_CARDIRECT_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/cardinal_relation.h"
#include "core/percentage_matrix.h"
#include "engine/batch_engine.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// A user-annotated region of interest.
struct AnnotatedRegion {
  std::string id;     ///< Required, unique within the configuration.
  std::string name;   ///< Optional display name.
  std::string color;  ///< Thematic attribute (paper §4: f(x) = color).
  Region geometry;
};

/// A stored qualitative relation: `primary` R `reference`.
struct RelationRecord {
  std::string primary_id;
  std::string reference_id;
  CardinalRelation relation;
};

/// A CARDIRECT configuration (the DTD's Image element).
class Configuration {
 public:
  Configuration() = default;
  Configuration(std::string name, std::string image_file)
      : name_(std::move(name)), image_file_(std::move(image_file)) {}

  const std::string& name() const { return name_; }
  const std::string& image_file() const { return image_file_; }
  void set_name(std::string name) { name_ = std::move(name); }
  void set_image_file(std::string file) { image_file_ = std::move(file); }

  const std::vector<AnnotatedRegion>& regions() const { return regions_; }
  const std::vector<RelationRecord>& relations() const { return relations_; }

  /// Adds a region; fails on duplicate/empty id or invalid geometry.
  /// Polygon rings are reoriented to the canonical clockwise order.
  Status AddRegion(AnnotatedRegion region);

  /// Removes the region with `id` and every stored relation touching it.
  Status RemoveRegion(const std::string& id);

  /// Appends one more polygon to an existing region (regions in REG* are
  /// sets of polygons) and drops that region's stale stored relations. The
  /// ring is reoriented to clockwise and validated.
  Status AddPolygonToRegion(const std::string& id, Polygon polygon);

  /// The region with `id`, or nullptr.
  const AnnotatedRegion* FindRegion(const std::string& id) const;

  /// Regions carrying thematic color `color`.
  std::vector<const AnnotatedRegion*> RegionsByColor(
      const std::string& color) const;

  /// Recomputes all pairwise cardinal direction relations and stores them
  /// (the paper's "compute their relationships" action — Fig. 12). n
  /// regions yield n·(n−1) records in canonical (primary, reference)
  /// order. Runs on the batch relation engine (src/engine): MBB
  /// prefiltering plus an optional thread pool; the stored records are
  /// identical for every `options.threads` value. `stats`, when non-null,
  /// receives the engine instrumentation.
  Status ComputeAllRelations(const EngineOptions& options = EngineOptions(),
                             EngineStats* stats = nullptr);

  /// The stored relation `primary R reference`, or nullopt when relations
  /// have not been computed (or a region is missing).
  std::optional<CardinalRelation> StoredRelation(
      const std::string& primary_id, const std::string& reference_id) const;

  /// On-demand percentage matrix between two regions (not persisted in the
  /// XML, matching the DTD which stores qualitative relations only).
  Result<PercentageMatrix> ComputePercentages(
      const std::string& primary_id, const std::string& reference_id) const;

  /// Replaces the stored relation records (used by the XML reader).
  void SetRelations(std::vector<RelationRecord> relations) {
    relations_ = std::move(relations);
  }

 private:
  std::string name_;
  std::string image_file_;
  std::vector<AnnotatedRegion> regions_;
  std::vector<RelationRecord> relations_;
};

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_MODEL_H_
