// The CARDIRECT configuration model (paper §4).
//
// A configuration ("Image" in the paper's DTD) is defined upon an image file
// and comprises a set of annotated regions plus the direction relations
// computed between them. Each region has an id, an optional name, a thematic
// color attribute, and a set of polygons.

#ifndef CARDIR_CARDIRECT_MODEL_H_
#define CARDIR_CARDIRECT_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/cardinal_relation.h"
#include "core/percentage_matrix.h"
#include "engine/batch_engine.h"
#include "engine/delta_engine.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// A user-annotated region of interest.
struct AnnotatedRegion {
  std::string id;     ///< Required, unique within the configuration.
  std::string name;   ///< Optional display name.
  std::string color;  ///< Thematic attribute (paper §4: f(x) = color).
  Region geometry;
};

/// A stored qualitative relation: `primary` R `reference`.
struct RelationRecord {
  std::string primary_id;
  std::string reference_id;
  CardinalRelation relation;
};

/// A CARDIRECT configuration (the DTD's Image element).
class Configuration {
 public:
  Configuration() = default;
  Configuration(std::string name, std::string image_file)
      : name_(std::move(name)), image_file_(std::move(image_file)) {}

  const std::string& name() const { return name_; }
  const std::string& image_file() const { return image_file_; }
  void set_name(std::string name) { name_ = std::move(name); }
  void set_image_file(std::string file) { image_file_ = std::move(file); }

  const std::vector<AnnotatedRegion>& regions() const { return regions_; }

  /// The *explicit* relation records — ones loaded from XML. Computed
  /// relations live in the RelationStore instead (45 bytes/region + 2 bytes
  /// per crossing pair, vs ~56 bytes per pair here — n·(n−1) records defeat
  /// the engine's sub-quadratic memory); consumers that want "all stored
  /// relations" regardless of provenance iterate ForEachRelation / count
  /// relation_count.
  const std::vector<RelationRecord>& relations() const { return relations_; }

  /// Stored relations, from whichever representation holds them: the
  /// computed (possibly delta-maintained) RelationStore when present, the
  /// explicit records otherwise.
  size_t relation_count() const {
    const RelationStore* store = relation_store();
    return store != nullptr ? store->pair_count() : relations_.size();
  }
  bool has_relations() const { return relation_count() != 0; }

  /// Invokes `fn(primary_id, reference_id, relation)` for every stored
  /// relation, in canonical (primary, reference) row-major order — the
  /// order ComputeAllRelations has always produced, so XML output is
  /// byte-identical whichever representation backs the configuration.
  template <typename Fn>
  void ForEachRelation(Fn&& fn) const {
    const RelationStore* store = relation_store();
    if (store != nullptr) {
      store->ForEach(
          [this, &fn](size_t i, size_t j, const CardinalRelation& relation) {
            fn(regions_[i].id, regions_[j].id, relation);
          });
    } else {
      for (const RelationRecord& record : relations_) {
        fn(record.primary_id, record.reference_id, record.relation);
      }
    }
  }

  /// The computed relation store — freshly computed or delta-maintained —
  /// or nullptr when relations were loaded from XML (telemetry + tests).
  const RelationStore* relation_store() const {
    if (delta_.has_value()) return &delta_->store();
    return store_.has_value() ? &*store_ : nullptr;
  }

  /// The incremental engine backing the store, engaged once a computed
  /// configuration is mutated (test/telemetry hook).
  const DeltaEngine* delta_engine() const {
    return delta_.has_value() ? &*delta_ : nullptr;
  }

  /// Adds a region; fails on duplicate/empty id or invalid geometry.
  /// Polygon rings are reoriented to the canonical clockwise order. On a
  /// computed configuration the new region's relations are resolved
  /// incrementally (DeltaEngine::Insert) — the store stays complete, no
  /// recompute needed.
  Status AddRegion(AnnotatedRegion region);

  /// Removes the region with `id` and every stored relation touching it.
  /// On a computed configuration the store is delta-maintained
  /// (DeltaEngine::Remove); all other pairs keep their stored relations.
  Status RemoveRegion(const std::string& id);

  /// Appends one more polygon to an existing region (regions in REG* are
  /// sets of polygons). The ring is reoriented to clockwise and validated.
  /// On a computed configuration the region's relations are re-resolved
  /// incrementally (DeltaEngine::Move); XML-loaded records touching the
  /// region are dropped as stale instead.
  Status AddPolygonToRegion(const std::string& id, Polygon polygon);

  /// The region with `id`, or nullptr.
  const AnnotatedRegion* FindRegion(const std::string& id) const;

  /// Regions carrying thematic color `color`.
  std::vector<const AnnotatedRegion*> RegionsByColor(
      const std::string& color) const;

  /// Recomputes all pairwise cardinal direction relations and stores them
  /// (the paper's "compute their relationships" action — Fig. 12) as a
  /// RelationStore covering the n·(n−1) ordered pairs in canonical
  /// (primary, reference) order. Runs on the sweep-join engine
  /// (src/engine/sweep_join.cc): implicit box resolution plus an optional
  /// thread pool; the stored relations are identical for every
  /// `options.threads` value. Replaces any explicit records. `stats`, when
  /// non-null, receives the engine instrumentation.
  Status ComputeAllRelations(const EngineOptions& options = EngineOptions(),
                             EngineStats* stats = nullptr);

  /// The stored relation `primary R reference`, or nullopt when relations
  /// have not been computed (or a region is missing).
  std::optional<CardinalRelation> StoredRelation(
      const std::string& primary_id, const std::string& reference_id) const;

  /// On-demand percentage matrix between two regions (not persisted in the
  /// XML, matching the DTD which stores qualitative relations only).
  Result<PercentageMatrix> ComputePercentages(
      const std::string& primary_id, const std::string& reference_id) const;

  /// Replaces the stored relations with explicit records (used by the XML
  /// reader). Drops any computed store / delta engine.
  void SetRelations(std::vector<RelationRecord> relations) {
    relations_ = std::move(relations);
    store_.reset();
    delta_.reset();
  }

 private:
  // Hands the computed store (if any) to a DeltaEngine so a mutation can
  // update it in place instead of recomputing or dropping it. No-op when a
  // delta engine is already active or nothing was computed.
  void PromoteToDelta();

  std::string name_;
  std::string image_file_;
  std::vector<AnnotatedRegion> regions_;
  // Stored relations: at most one representation is active. `store_` right
  // after ComputeAllRelations (indices parallel regions_); `delta_` once a
  // computed configuration is mutated (it owns the maintained store);
  // `relations_` after an XML load.
  std::vector<RelationRecord> relations_;
  std::optional<RelationStore> store_;
  std::optional<DeltaEngine> delta_;
};

}  // namespace cardir

#endif  // CARDIR_CARDIRECT_MODEL_H_
