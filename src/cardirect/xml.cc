#include "cardirect/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace cardir {

const std::string* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& [key, value] : attributes) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string XmlNode::AttributeOr(std::string_view name,
                                 std::string fallback) const {
  const std::string* value = FindAttribute(name);
  return value != nullptr ? *value : std::move(fallback);
}

std::vector<const XmlNode*> XmlNode::ChildrenNamed(std::string_view tag_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children) {
    if (child.tag == tag_name) out.push_back(&child);
  }
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  Result<XmlNode> ParseDocument() {
    SkipPrologue();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    CARDIR_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  Status Error(const std::string& message) const {
    // Report 1-based line for usability.
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return Status::ParseError(StrFormat("xml:%zu: %s", line,
                                        message.c_str()));
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (!LookingAt("<!--")) return false;
    const size_t end = input_.find("-->", pos_ + 4);
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
    return true;
  }

  bool SkipProcessingInstruction() {
    if (!LookingAt("<?")) return false;
    const size_t end = input_.find("?>", pos_ + 2);
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
    return true;
  }

  bool SkipDoctype() {
    if (!LookingAt("<!DOCTYPE")) return false;
    // Skip to the matching '>', honouring an internal subset in [...].
    int bracket_depth = 0;
    while (!AtEnd()) {
      const char c = input_[pos_++];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth == 0) break;
    }
    return true;
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (SkipComment() || SkipProcessingInstruction()) continue;
      break;
    }
  }

  void SkipPrologue() {
    for (;;) {
      SkipWhitespace();
      if (SkipProcessingInstruction() || SkipComment() || SkipDoctype()) {
        continue;
      }
      break;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        // Numeric character reference; ASCII only in this subset.
        long code = 0;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
        }
        if (code <= 0 || code > 127) {
          return Error("unsupported character reference: &" +
                       std::string(entity) + ";");
        }
        out += static_cast<char>(code);
      } else {
        return Error("unknown entity: &" + std::string(entity) + ";");
      }
      i = semi;
    }
    return out;
  }

  Result<std::pair<std::string, std::string>> ParseAttribute() {
    CARDIR_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
    ++pos_;
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    ++pos_;
    const size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated attribute value");
    CARDIR_ASSIGN_OR_RETURN(
        std::string value, DecodeEntities(input_.substr(start, pos_ - start)));
    ++pos_;  // Closing quote.
    return std::make_pair(std::move(name), std::move(value));
  }

  Result<XmlNode> ParseElement() {
    ++pos_;  // '<'
    XmlNode node;
    CARDIR_ASSIGN_OR_RETURN(node.tag, ParseName());
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + node.tag);
      if (LookingAt("/>")) {
        pos_ += 2;
        return node;
      }
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      CARDIR_ASSIGN_OR_RETURN(auto attribute, ParseAttribute());
      node.attributes.push_back(std::move(attribute));
    }
    // Content until the matching end tag.
    for (;;) {
      if (AtEnd()) return Error("missing </" + node.tag + ">");
      if (LookingAt("</")) {
        pos_ += 2;
        CARDIR_ASSIGN_OR_RETURN(std::string closing, ParseName());
        if (closing != node.tag) {
          return Error("mismatched end tag </" + closing + ">, expected </" +
                       node.tag + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("malformed end tag");
        ++pos_;
        return node;
      }
      if (SkipComment()) continue;
      if (SkipProcessingInstruction()) continue;
      if (Peek() == '<') {
        CARDIR_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
        node.children.push_back(std::move(child));
        continue;
      }
      const size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      CARDIR_ASSIGN_OR_RETURN(
          std::string text, DecodeEntities(input_.substr(start, pos_ - start)));
      node.text += text;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void WriteNode(const XmlNode& node, bool pretty, int depth,
               std::string* out) {
  const std::string indent = pretty ? std::string(2 * depth, ' ') : "";
  *out += indent;
  *out += '<';
  *out += node.tag;
  for (const auto& [key, value] : node.attributes) {
    *out += ' ';
    *out += key;
    *out += "=\"";
    *out += XmlEscape(value);
    *out += '"';
  }
  const std::string_view text = StripWhitespace(node.text);
  if (node.children.empty() && text.empty()) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (!text.empty()) *out += XmlEscape(text);
  if (!node.children.empty()) {
    if (pretty) *out += '\n';
    for (const XmlNode& child : node.children) {
      WriteNode(child, pretty, depth + 1, out);
    }
    *out += indent;
  }
  *out += "</";
  *out += node.tag;
  *out += '>';
  if (pretty) *out += '\n';
}

// Formats a coordinate compactly but round-trippably: %.15g covers most
// values produced by hand or by the generators; %.17g always round-trips.
std::string FormatCoordinate(double value) {
  std::string candidate = StrFormat("%.15g", value);
  if (std::strtod(candidate.c_str(), nullptr) == value) return candidate;
  return StrFormat("%.17g", value);
}

}  // namespace

Result<XmlNode> ParseXml(std::string_view input) {
  CARDIR_TRACE_SPAN("xml.parse");
  const uint64_t start_us = obs::TraceNowMicros();
  Result<XmlNode> root = XmlParser(input).ParseDocument();
  CARDIR_METRIC_COUNT("xml.parse.calls", 1);
  CARDIR_METRIC_COUNT("xml.parse.bytes", input.size());
  CARDIR_METRIC_OBSERVE("xml.parse_us", obs::TraceNowMicros() - start_us);
  return root;
}

std::string WriteXml(const XmlNode& root, bool pretty) {
  CARDIR_TRACE_SPAN("xml.serialize");
  const uint64_t start_us = obs::TraceNowMicros();
  std::string out;
  WriteNode(root, pretty, 0, &out);
  CARDIR_METRIC_COUNT("xml.serialize.calls", 1);
  CARDIR_METRIC_COUNT("xml.serialize.bytes", out.size());
  CARDIR_METRIC_OBSERVE("xml.serialize_us", obs::TraceNowMicros() - start_us);
  return out;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

Result<Configuration> ConfigurationFromXml(std::string_view xml) {
  CARDIR_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.tag != "Image") {
    return Status::ParseError("root element must be <Image>, got <" +
                              root.tag + ">");
  }
  Configuration configuration(root.AttributeOr("name", ""),
                              root.AttributeOr("file", ""));
  for (const XmlNode* region_node : root.ChildrenNamed("Region")) {
    AnnotatedRegion region;
    const std::string* id = region_node->FindAttribute("id");
    if (id == nullptr) {
      return Status::ParseError("<Region> is missing the required id");
    }
    region.id = *id;
    region.name = region_node->AttributeOr("name", "");
    region.color = region_node->AttributeOr("color", "");
    for (const XmlNode* polygon_node : region_node->ChildrenNamed("Polygon")) {
      Polygon polygon;
      for (const XmlNode* edge_node : polygon_node->ChildrenNamed("Edge")) {
        const std::string* x = edge_node->FindAttribute("x");
        const std::string* y = edge_node->FindAttribute("y");
        if (x == nullptr || y == nullptr) {
          return Status::ParseError("<Edge> requires x and y attributes");
        }
        CARDIR_ASSIGN_OR_RETURN(double px, ParseDouble(*x));
        CARDIR_ASSIGN_OR_RETURN(double py, ParseDouble(*y));
        polygon.AddVertex(Point(px, py));
      }
      if (polygon.size() < 3) {
        return Status::ParseError("region '" + region.id +
                                  "': polygon with fewer than 3 edges");
      }
      region.geometry.AddPolygon(std::move(polygon));
    }
    CARDIR_RETURN_IF_ERROR(configuration.AddRegion(std::move(region)));
  }
  std::vector<RelationRecord> records;
  for (const XmlNode* relation_node : root.ChildrenNamed("Relation")) {
    const std::string* type = relation_node->FindAttribute("type");
    const std::string* primary = relation_node->FindAttribute("primary");
    const std::string* reference = relation_node->FindAttribute("reference");
    if (type == nullptr || primary == nullptr || reference == nullptr) {
      return Status::ParseError(
          "<Relation> requires type, primary and reference attributes");
    }
    if (configuration.FindRegion(*primary) == nullptr ||
        configuration.FindRegion(*reference) == nullptr) {
      return Status::ParseError("<Relation> references unknown region id");
    }
    CARDIR_ASSIGN_OR_RETURN(CardinalRelation relation,
                            CardinalRelation::Parse(*type));
    records.push_back({*primary, *reference, relation});
  }
  configuration.SetRelations(std::move(records));
  return configuration;
}

std::string ConfigurationToXml(const Configuration& configuration) {
  XmlNode root;
  root.tag = "Image";
  if (!configuration.name().empty()) {
    root.attributes.emplace_back("name", configuration.name());
  }
  if (!configuration.image_file().empty()) {
    root.attributes.emplace_back("file", configuration.image_file());
  }
  for (const AnnotatedRegion& region : configuration.regions()) {
    XmlNode region_node;
    region_node.tag = "Region";
    region_node.attributes.emplace_back("id", region.id);
    if (!region.name.empty()) {
      region_node.attributes.emplace_back("name", region.name);
    }
    if (!region.color.empty()) {
      region_node.attributes.emplace_back("color", region.color);
    }
    int polygon_id = 0;
    for (const Polygon& polygon : region.geometry.polygons()) {
      XmlNode polygon_node;
      polygon_node.tag = "Polygon";
      polygon_node.attributes.emplace_back(
          "id", StrFormat("%s-p%d", region.id.c_str(), polygon_id++));
      for (const Point& vertex : polygon.vertices()) {
        XmlNode edge_node;
        edge_node.tag = "Edge";
        edge_node.attributes.emplace_back("x", FormatCoordinate(vertex.x));
        edge_node.attributes.emplace_back("y", FormatCoordinate(vertex.y));
        polygon_node.children.push_back(std::move(edge_node));
      }
      region_node.children.push_back(std::move(polygon_node));
    }
    root.children.push_back(std::move(region_node));
  }
  // Computed configurations stream straight out of the RelationStore in
  // the same canonical order the record vector used to hold, so the XML is
  // byte-identical across the two representations.
  configuration.ForEachRelation([&root](const std::string& primary_id,
                                        const std::string& reference_id,
                                        const CardinalRelation& relation) {
    XmlNode relation_node;
    relation_node.tag = "Relation";
    relation_node.attributes.emplace_back("type", relation.ToString());
    relation_node.attributes.emplace_back("primary", primary_id);
    relation_node.attributes.emplace_back("reference", reference_id);
    root.children.push_back(std::move(relation_node));
  });
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += WriteXml(root, /*pretty=*/true);
  return out;
}

Status SaveConfiguration(const Configuration& configuration,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for writing");
  const std::string text = ConfigurationToXml(configuration);
  CARDIR_MEMSTAT_ALLOC("xml_buffer", text.size());
  file << text;
  CARDIR_MEMSTAT_FREE("xml_buffer", text.size());
  file.close();
  if (!file) return Status::IoError("failed writing '" + path + "'");
  return Status::Ok();
}

Result<Configuration> LoadConfiguration(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  // The whole-file text buffer is the transient peak of an ingest; charge
  // it for the duration of the parse so mem.xml_buffer's high-water shows
  // the real footprint of loading a large configuration.
  CARDIR_MEMSTAT_ALLOC("xml_buffer", text.size());
  Result<Configuration> result = ConfigurationFromXml(text);
  CARDIR_MEMSTAT_FREE("xml_buffer", text.size());
  return result;
}

}  // namespace cardir
