// CARDIR_AUDIT-gated runtime invariant auditing.
//
// Debug/sanitizer builds compile paper-level invariant checks into the
// algorithm and engine seams (configure with -DCARDIR_AUDIT=ON; the
// asan-ubsan and tsan presets do). Release builds compile them out
// entirely — CARDIR_AUDIT(...) expands to nothing, so validator arguments
// are never evaluated.
//
// A validator (audit/invariants.h) returns std::nullopt when its invariant
// holds and a diagnostic message when it does not. CARDIR_AUDIT(call)
// routes failures to the installed handler; the default handler logs the
// message and aborts, so a violated invariant fails whichever test or
// sanitizer run exposed it. Tests install a counting handler to exercise
// deliberate violations without dying.

#ifndef CARDIR_AUDIT_AUDIT_H_
#define CARDIR_AUDIT_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>

namespace cardir {

#ifdef CARDIR_AUDIT_ENABLED
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

/// Outcome of one validator: nullopt when the invariant holds, otherwise a
/// human-readable description of the violation.
using AuditResult = std::optional<std::string>;

/// Invoked on every audit failure (possibly concurrently — the engine
/// audits from worker threads). Must not return for failures the caller
/// cannot continue past; the default handler aborts.
using AuditFailureHandler = void (*)(const char* file, int line,
                                     const std::string& message);

/// Installs `handler`; nullptr restores the default log-and-abort handler.
/// Returns the previously installed handler (nullptr = default).
AuditFailureHandler SetAuditFailureHandler(AuditFailureHandler handler);

/// Process-wide count of audit failures, including those a custom handler
/// chose to swallow.
uint64_t AuditFailureCount();
void ResetAuditFailureCount();

namespace internal_audit {
void Fail(const char* file, int line, const std::string& message);
}  // namespace internal_audit

// Evaluates a validator call and reports a failure through the handler.
// Compiled out (arguments unevaluated) unless CARDIR_AUDIT_ENABLED. Guard
// expensive setup for an audit with `if constexpr (kAuditEnabled)`.
#ifdef CARDIR_AUDIT_ENABLED
#define CARDIR_AUDIT(validator_call)                                      \
  do {                                                                    \
    const ::cardir::AuditResult cardir_audit_result__ = (validator_call); \
    if (cardir_audit_result__.has_value()) {                              \
      ::cardir::internal_audit::Fail(__FILE__, __LINE__,                  \
                                     *cardir_audit_result__);             \
    }                                                                     \
  } while (false)
#else
// sizeof keeps the expression parsed (so audit-only variables count as
// used and bit-rot is caught at compile time) without ever evaluating it.
#define CARDIR_AUDIT(validator_call)          \
  do {                                        \
    (void)sizeof((validator_call));           \
  } while (false)
#endif

}  // namespace cardir

#endif  // CARDIR_AUDIT_AUDIT_H_
