#include "audit/audit.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace cardir {
namespace {

std::atomic<AuditFailureHandler> g_handler{nullptr};
std::atomic<uint64_t> g_failure_count{0};

}  // namespace

AuditFailureHandler SetAuditFailureHandler(AuditFailureHandler handler) {
  return g_handler.exchange(handler);
}

uint64_t AuditFailureCount() {
  return g_failure_count.load(std::memory_order_relaxed);
}

void ResetAuditFailureCount() {
  g_failure_count.store(0, std::memory_order_relaxed);
}

namespace internal_audit {

void Fail(const char* file, int line, const std::string& message) {
  g_failure_count.fetch_add(1, std::memory_order_relaxed);
  const AuditFailureHandler handler = g_handler.load();
  if (handler != nullptr) {
    handler(file, line, message);
    return;
  }
  {
    internal_logging::LogMessage log(LogLevel::kError, file, line);
    log.stream() << "audit failure: " << message;
  }
  std::abort();
}

}  // namespace internal_audit
}  // namespace cardir
