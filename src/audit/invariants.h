// Paper-level invariant validators for the CARDIR_AUDIT layer.
//
// Each validator is a pure function returning AuditResult (nullopt = the
// invariant holds); the algorithm and engine seams feed them through the
// CARDIR_AUDIT(...) macro of audit/audit.h. Everything here is inline so
// that cardir_core and cardir_engine can audit themselves without a link
// cycle through the audit library (which only holds the failure handler).
//
// Invariants covered (paper references in §2–§3):
//  * percentage matrices: entries in [0, 100], total = 100 ± ε
//    (Definition of the matrix with percentages, §2);
//  * qualitative/quantitative agreement: every tile holding a positive
//    share of the primary's area is a tile of Compute-CDR's relation
//    (Compute-CDR% refines Compute-CDR, §3.2 — the converse need not hold:
//    Compute-CDR also reports tiles touched only on a measure-zero
//    boundary);
//  * trapezoid totals: summed over a closed ring, the signed trapezoid
//    expressions of Definition 4 telescope to the shoelace signed area,
//    for every reference line — Σ E_l(AB) = −SignedArea and
//    Σ E'_m(AB) = +SignedArea;
//  * prefilter agreement: a pair the MBB prefilter resolves from the boxes
//    must get the same relation as the full Compute-CDR run;
//  * exact cover: parallel loops and the engine's sink must touch every
//    index/pair exactly once.

#ifndef CARDIR_AUDIT_INVARIANTS_H_
#define CARDIR_AUDIT_INVARIANTS_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "audit/audit.h"
#include "core/cardinal_relation.h"
#include "core/compute_cdr.h"
#include "core/percentage_matrix.h"
#include "core/tile.h"
#include "geometry/polygon.h"
#include "geometry/region.h"
#include "geometry/segment.h"
#include "util/string_util.h"

namespace cardir {

/// Entries non-negative, none above 100, total within `tolerance`
/// percentage points of 100.
inline AuditResult AuditPercentMatrix(const PercentageMatrix& matrix,
                                      double tolerance = 1e-6) {
  for (Tile t : kAllTiles) {
    const double v = matrix.at(t);
    if (!(v >= 0.0)) {
      return StrFormat("percentage matrix: tile %s is negative (%.17g)",
                       std::string(TileName(t)).c_str(), v);
    }
    if (v > 100.0 + tolerance) {
      return StrFormat("percentage matrix: tile %s exceeds 100%% (%.17g)",
                       std::string(TileName(t)).c_str(), v);
    }
  }
  const double total = matrix.Total();
  if (std::abs(total - 100.0) > tolerance) {
    return StrFormat("percentage matrix: total %.17g differs from 100 "
                     "by more than %.3g",
                     total, tolerance);
  }
  return std::nullopt;
}

/// Per-tile areas non-negative and summing (within `rel_tol`, relative to
/// the larger of 1 and the region's area) to the primary's shoelace area —
/// the Σ area(tile ∩ a) = area(a) identity behind Theorem 2.
inline AuditResult AuditTileAreasMatchRegion(
    const std::array<double, kNumTiles>& tile_areas, double total_area,
    const Region& primary, double rel_tol = 1e-7) {
  double sum = 0.0;
  for (Tile t : kAllTiles) {
    const double a = tile_areas[static_cast<int>(t)];
    if (!(a >= 0.0)) {
      return StrFormat("tile areas: tile %s is negative (%.17g)",
                       std::string(TileName(t)).c_str(), a);
    }
    sum += a;
  }
  const double region_area = primary.Area();
  const double scale = std::max({1.0, region_area, sum});
  if (std::abs(sum - total_area) > rel_tol * scale) {
    return StrFormat("tile areas: sum %.17g disagrees with total_area %.17g",
                     sum, total_area);
  }
  if (std::abs(sum - region_area) > rel_tol * scale) {
    return StrFormat("tile areas: sum %.17g disagrees with shoelace "
                     "region area %.17g",
                     sum, region_area);
  }
  return std::nullopt;
}

/// Every tile with more than `eps_percent` of the primary's area is a tile
/// of the qualitative relation (Compute-CDR% refines Compute-CDR). The
/// qualitative relation may hold extra tiles that the region only touches
/// on a measure-zero boundary.
inline AuditResult AuditQualQuantAgreement(const CardinalRelation& qualitative,
                                           const PercentageMatrix& matrix,
                                           double eps_percent = 1e-9) {
  for (Tile t : kAllTiles) {
    if (matrix.at(t) > eps_percent && !qualitative.Includes(t)) {
      return StrFormat(
          "qual/quant disagreement: tile %s carries %.17g%% of the area "
          "but is missing from Compute-CDR relation %s",
          std::string(TileName(t)).c_str(), matrix.at(t),
          qualitative.ToString().c_str());
    }
  }
  return std::nullopt;
}

/// Σ E_l(AB) over a closed ring equals −SignedArea and Σ E'_m(AB) equals
/// +SignedArea, for any reference line (Definition 4 telescopes; the l/m
/// terms cancel around the ring). Checked against the ring's own bounding
/// extremes, the reference lines the algorithms actually use.
inline AuditResult AuditTrapezoidTotals(const Polygon& polygon,
                                        double rel_tol = 1e-9) {
  const size_t n = polygon.size();
  if (n < 3) return std::nullopt;
  double min_x = polygon.vertex(0).x, min_y = polygon.vertex(0).y;
  for (size_t i = 1; i < n; ++i) {
    min_x = std::min(min_x, polygon.vertex(i).x);
    min_y = std::min(min_y, polygon.vertex(i).y);
  }
  double sum_horizontal = 0.0;  // Σ E_l against y = min_y.
  double sum_vertical = 0.0;    // Σ E'_m against x = min_x.
  double magnitude = 0.0;       // Cancellation scale for the tolerance.
  for (size_t i = 0; i < n; ++i) {
    const Segment edge = polygon.edge(i);
    const double h = TrapezoidHorizontal(edge, min_y);
    const double v = TrapezoidVertical(edge, min_x);
    sum_horizontal += h;
    sum_vertical += v;
    magnitude += std::abs(h) + std::abs(v);
  }
  const double signed_area = polygon.SignedArea();
  const double tolerance = rel_tol * std::max(1.0, magnitude);
  if (std::abs(sum_horizontal + signed_area) > tolerance) {
    return StrFormat("trapezoid totals: Sigma E_l = %.17g but -SignedArea "
                     "= %.17g",
                     sum_horizontal, -signed_area);
  }
  if (std::abs(sum_vertical - signed_area) > tolerance) {
    return StrFormat("trapezoid totals: Sigma E'_m = %.17g but SignedArea "
                     "= %.17g",
                     sum_vertical, signed_area);
  }
  return std::nullopt;
}

/// A pair the MBB prefilter resolved from the boxes must agree with the
/// full Compute-CDR on the real geometry.
inline AuditResult AuditPrefilterAgreement(const CardinalRelation& from_boxes,
                                           const Region& primary,
                                           const Region& reference) {
  const CardinalRelation full =
      ComputeCdrUnchecked(primary, reference).relation;
  if (from_boxes != full) {
    return StrFormat(
        "prefilter disagreement: boxes resolved %s but Compute-CDR gives %s",
        from_boxes.ToString().c_str(), full.ToString().c_str());
  }
  return std::nullopt;
}

/// Exact-cover check for parallel loops/sinks: `actual` items processed,
/// `expected` items in the index space.
inline AuditResult AuditExactCover(uint64_t actual, uint64_t expected,
                                   const char* what) {
  if (actual != expected) {
    return StrFormat("%s: covered %llu of %llu items", what,
                     static_cast<unsigned long long>(actual),
                     static_cast<unsigned long long>(expected));
  }
  return std::nullopt;
}

}  // namespace cardir

#endif  // CARDIR_AUDIT_INVARIANTS_H_
