// Inverse of a cardinal direction relation (paper §2, after [21]).
//
// The inverse of a basic relation R is in general *disjunctive*:
// Inverse(R) = { S : ∃ a, b ∈ REG* with a R b and b S a }. For example
// Inverse(S) = {N, N:NE, NE, N:NW, NW, NW:N:NE} — if a is south of b, then b
// is north of a but may spill into NE/NW of a's (smaller) bounding box.
//
// Computed once for all 511 basic relations by exhaustive search over the
// canonical two-region models (reasoning/canonical_model.h).

#ifndef CARDIR_REASONING_INVERSE_H_
#define CARDIR_REASONING_INVERSE_H_

#include "core/cardinal_relation.h"
#include "reasoning/disjunctive_relation.h"

namespace cardir {

/// The disjunctive inverse of a basic relation. CHECK-fails on the empty
/// relation.
const DisjunctiveRelation& Inverse(const CardinalRelation& relation);

/// Inverse of a disjunctive relation: the union of the member inverses.
DisjunctiveRelation Inverse(const DisjunctiveRelation& relation);

/// The mutual-compatibility test of §2: (R1, R2) characterises a realisable
/// relative position iff R1 ∈ Inverse(R2) (equivalently R2 ∈ Inverse(R1)).
bool IsValidRelationPair(const CardinalRelation& r1,
                         const CardinalRelation& r2);

}  // namespace cardir

#endif  // CARDIR_REASONING_INVERSE_H_
