#include "reasoning/canonical_model.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace cardir {
namespace internal_model {

std::vector<std::vector<int8_t>> EnumerateAxisConfigs(int num_regions) {
  CARDIR_CHECK(num_regions >= 1 && num_regions <= 3);
  const int endpoints = 2 * num_regions;
  const int max_level = endpoints;  // Levels 0..endpoints-1 suffice.
  std::vector<std::vector<int8_t>> configs;
  std::vector<int8_t> assignment(endpoints, 0);

  // Enumerate all level assignments, keep canonical ones.
  auto is_valid = [&]() {
    // lo < hi per region (endpoint 2i is lo_i, 2i+1 is hi_i).
    for (int r = 0; r < num_regions; ++r) {
      if (assignment[2 * r] >= assignment[2 * r + 1]) return false;
    }
    // Used levels must form a gapless prefix 0..max.
    int max_used = 0;
    uint32_t used = 0;
    for (int8_t level : assignment) {
      used |= 1u << level;
      max_used = std::max<int>(max_used, level);
    }
    return used == (1u << (max_used + 1)) - 1;
  };

  // Odometer over level vectors.
  for (;;) {
    if (is_valid()) configs.push_back(assignment);
    int i = endpoints - 1;
    while (i >= 0 && assignment[i] == max_level - 1) {
      assignment[i] = 0;
      --i;
    }
    if (i < 0) break;
    ++assignment[i];
  }
  return configs;
}

}  // namespace internal_model

namespace {

using internal_model::EnumerateAxisConfigs;
using internal_model::SlotBand;

// Bands of the slots of span [lo_p, hi_p] w.r.t. span [lo_r, hi_r].
std::vector<int8_t> SpanBands(int lo_p, int hi_p, int lo_r, int hi_r) {
  std::vector<int8_t> bands;
  bands.reserve(static_cast<size_t>(hi_p - lo_p));
  for (int slot = lo_p; slot < hi_p; ++slot) {
    bands.push_back(static_cast<int8_t>(SlotBand(slot, lo_r, hi_r)));
  }
  return bands;
}

std::vector<PairAxisSignature> BuildPairAxisSignatures() {
  std::set<PairAxisSignature> unique;
  for (const std::vector<int8_t>& cfg : EnumerateAxisConfigs(2)) {
    PairAxisSignature sig;
    sig.a_wrt_b = SpanBands(cfg[0], cfg[1], cfg[2], cfg[3]);
    sig.b_wrt_a = SpanBands(cfg[2], cfg[3], cfg[0], cfg[1]);
    unique.insert(std::move(sig));
  }
  return {unique.begin(), unique.end()};
}

std::vector<TripleAxisSignature> BuildTripleAxisSignatures() {
  std::set<TripleAxisSignature> unique;
  for (const std::vector<int8_t>& cfg : EnumerateAxisConfigs(3)) {
    const int a_lo = cfg[0], a_hi = cfg[1];
    const int b_lo = cfg[2], b_hi = cfg[3];
    const int c_lo = cfg[4], c_hi = cfg[5];
    TripleAxisSignature sig;
    sig.a_slots.reserve(static_cast<size_t>(a_hi - a_lo));
    for (int slot = a_lo; slot < a_hi; ++slot) {
      const int wrt_b = SlotBand(slot, b_lo, b_hi);
      const int wrt_c = SlotBand(slot, c_lo, c_hi);
      sig.a_slots.push_back(static_cast<int8_t>(wrt_b * 3 + wrt_c));
    }
    sig.b_slots = SpanBands(b_lo, b_hi, c_lo, c_hi);
    unique.insert(std::move(sig));
  }
  return {unique.begin(), unique.end()};
}

uint16_t TileBit(int column_band, int row_band) {
  const Tile tile = TileAt(static_cast<TileColumn>(column_band),
                           static_cast<TileRow>(row_band));
  return static_cast<uint16_t>(1u << static_cast<int>(tile));
}

}  // namespace

const std::vector<PairAxisSignature>& AllPairAxisSignatures() {
  static const std::vector<PairAxisSignature>& signatures =
      *new std::vector<PairAxisSignature>(BuildPairAxisSignatures());
  return signatures;
}

const std::vector<TripleAxisSignature>& AllTripleAxisSignatures() {
  static const std::vector<TripleAxisSignature>& signatures =
      *new std::vector<TripleAxisSignature>(BuildTripleAxisSignatures());
  return signatures;
}

PairTileSets MakePairTileSets(const std::vector<int8_t>& x_bands,
                              const std::vector<int8_t>& y_bands) {
  PairTileSets sets;
  const size_t nx = x_bands.size();
  const size_t ny = y_bands.size();
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      const uint16_t bit = TileBit(x_bands[i], y_bands[j]);
      sets.avail |= bit;
      if (i == 0) sets.first_x |= bit;
      if (i == nx - 1) sets.last_x |= bit;
      if (j == 0) sets.first_y |= bit;
      if (j == ny - 1) sets.last_y |= bit;
    }
  }
  return sets;
}

bool PairFeasible(uint16_t relation_mask, const PairTileSets& sets) {
  if (relation_mask == 0) return false;
  if ((relation_mask & ~sets.avail) != 0) return false;  // Tile unavailable.
  return (relation_mask & sets.first_x) != 0 &&
         (relation_mask & sets.last_x) != 0 &&
         (relation_mask & sets.first_y) != 0 &&
         (relation_mask & sets.last_y) != 0;
}

bool RelationRealizable(uint16_t relation_mask) {
  for (const PairAxisSignature& x : AllPairAxisSignatures()) {
    for (const PairAxisSignature& y : AllPairAxisSignatures()) {
      if (PairFeasible(relation_mask,
                       MakePairTileSets(x.a_wrt_b, y.a_wrt_b))) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace cardir
