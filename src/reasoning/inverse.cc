#include "reasoning/inverse.h"

#include <array>

#include "reasoning/canonical_model.h"
#include "util/logging.h"

namespace cardir {
namespace {

using InverseTable = std::array<DisjunctiveRelation, 512>;

InverseTable BuildInverseTable() {
  InverseTable table;
  const std::vector<PairAxisSignature>& sigs = AllPairAxisSignatures();
  for (const PairAxisSignature& x : sigs) {
    for (const PairAxisSignature& y : sigs) {
      const PairTileSets ab = MakePairTileSets(x.a_wrt_b, y.a_wrt_b);
      const PairTileSets ba = MakePairTileSets(x.b_wrt_a, y.b_wrt_a);
      // All relations S feasible for (b w.r.t. a) in this configuration.
      DisjunctiveRelation feasible_ba;
      for (uint16_t s = 1; s <= 511; ++s) {
        if (PairFeasible(s, ba)) feasible_ba.mutable_bits().set(s);
      }
      for (uint16_t r = 1; r <= 511; ++r) {
        if (PairFeasible(r, ab)) {
          table[r].mutable_bits() |= feasible_ba.bits();
        }
      }
    }
  }
  return table;
}

const InverseTable& GetInverseTable() {
  static const InverseTable& table = *new InverseTable(BuildInverseTable());
  return table;
}

}  // namespace

const DisjunctiveRelation& Inverse(const CardinalRelation& relation) {
  CARDIR_CHECK(!relation.IsEmpty()) << "inverse of the empty relation";
  return GetInverseTable()[relation.mask()];
}

DisjunctiveRelation Inverse(const DisjunctiveRelation& relation) {
  DisjunctiveRelation out;
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    if (relation.bits().test(mask)) {
      out.mutable_bits() |= GetInverseTable()[mask].bits();
    }
  }
  return out;
}

bool IsValidRelationPair(const CardinalRelation& r1,
                         const CardinalRelation& r2) {
  if (r1.IsEmpty() || r2.IsEmpty()) return false;
  return Inverse(r1).Contains(r2);
}

}  // namespace cardir
