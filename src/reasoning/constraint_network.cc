#include "reasoning/constraint_network.h"

#include <algorithm>
#include <queue>

#include "core/compute_cdr.h"
#include "reasoning/composition.h"
#include "reasoning/inverse.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// ---------------------------------------------------------------------------
// Order constraint solving (one axis).
//
// Nodes are endpoint ids (2i = lo of variable i, 2i+1 = hi). Edges u -> v
// mean u ≤ v; strict edges mean u < v. The system is satisfiable iff no
// strict edge joins two nodes of the same strongly connected component of
// the ≤-digraph. The canonical assignment gives each SCC a distinct level in
// topological order ("maximally spread"), which maps any witness order onto
// a refinement of itself.
// ---------------------------------------------------------------------------

struct OrderEdge {
  int from;
  int to;
  bool strict;
};

class OrderSolver {
 public:
  explicit OrderSolver(int num_nodes) : n_(num_nodes), adjacency_(num_nodes) {}

  void AddLessEqual(int u, int v) { AddEdge(u, v, false); }
  void AddLess(int u, int v) { AddEdge(u, v, true); }

  /// On success fills level[node] with canonical integer coordinates and
  /// returns true; returns false when a strict edge lies on a cycle.
  bool Solve(std::vector<int>* levels) {
    ComputeSccs();
    // A strict edge inside one SCC is a contradiction (u < v and v ≤ u).
    for (const OrderEdge& e : edges_) {
      if (e.strict && scc_of_[e.from] == scc_of_[e.to]) return false;
    }
    // Topological order of the condensation; assign one level per SCC.
    const int num_sccs = scc_count_;
    std::vector<std::vector<int>> dag(num_sccs);
    std::vector<int> indegree(num_sccs, 0);
    for (const OrderEdge& e : edges_) {
      const int a = scc_of_[e.from];
      const int b = scc_of_[e.to];
      if (a != b) {
        dag[a].push_back(b);
        ++indegree[b];
      }
    }
    // Kahn with a min-heap for determinism.
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (int s = 0; s < num_sccs; ++s) {
      if (indegree[s] == 0) ready.push(s);
    }
    std::vector<int> scc_level(num_sccs, -1);
    int next_level = 0;
    while (!ready.empty()) {
      const int s = ready.top();
      ready.pop();
      scc_level[s] = next_level++;
      for (int t : dag[s]) {
        if (--indegree[t] == 0) ready.push(t);
      }
    }
    CARDIR_CHECK(next_level == num_sccs) << "condensation must be acyclic";
    levels->resize(n_);
    for (int v = 0; v < n_; ++v) (*levels)[v] = scc_level[scc_of_[v]];
    return true;
  }

 private:
  void AddEdge(int u, int v, bool strict) {
    CARDIR_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    edges_.push_back({u, v, strict});
    adjacency_[u].push_back(v);
  }

  // Iterative Tarjan SCC.
  void ComputeSccs() {
    scc_of_.assign(n_, -1);
    std::vector<int> index(n_, -1);
    std::vector<int> lowlink(n_, 0);
    std::vector<bool> on_stack(n_, false);
    std::vector<int> stack;
    int next_index = 0;
    scc_count_ = 0;

    struct Frame {
      int node;
      size_t child;
    };
    for (int root = 0; root < n_; ++root) {
      if (index[root] != -1) continue;
      std::vector<Frame> frames{{root, 0}};
      index[root] = lowlink[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const int v = frame.node;
        if (frame.child < adjacency_[v].size()) {
          const int w = adjacency_[v][frame.child++];
          if (index[w] == -1) {
            index[w] = lowlink[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        } else {
          if (lowlink[v] == index[v]) {
            for (;;) {
              const int w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              scc_of_[w] = scc_count_;
              if (w == v) break;
            }
            ++scc_count_;
          }
          frames.pop_back();
          if (!frames.empty()) {
            const int parent = frames.back().node;
            lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
          }
        }
      }
    }
  }

  int n_;
  std::vector<OrderEdge> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> scc_of_;
  int scc_count_ = 0;
};

// Band sets on one axis of a relation: which of low/mid/high bands the
// relation's tiles occupy.
struct BandSet {
  bool low = false;
  bool mid = false;
  bool high = false;
};

BandSet ColumnBands(const CardinalRelation& r) {
  BandSet bands;
  for (Tile t : r.Tiles()) {
    switch (ColumnOf(t)) {
      case TileColumn::kWest: bands.low = true; break;
      case TileColumn::kMiddle: bands.mid = true; break;
      case TileColumn::kEast: bands.high = true; break;
    }
  }
  return bands;
}

BandSet RowBands(const CardinalRelation& r) {
  BandSet bands;
  for (Tile t : r.Tiles()) {
    switch (RowOf(t)) {
      case TileRow::kSouth: bands.low = true; break;
      case TileRow::kMiddle: bands.mid = true; break;
      case TileRow::kNorth: bands.high = true; break;
    }
  }
  return bands;
}

// Adds the endpoint order constraints implied by "i R j" on one axis.
// lo_i/hi_i/lo_j/hi_j are node ids in the solver.
void AddAxisConstraints(const BandSet& bands, int lo_i, int hi_i, int lo_j,
                        int hi_j, OrderSolver* solver) {
  // Positive area strictly below j's low line ⇔ low band occupied.
  if (bands.low) {
    solver->AddLess(lo_i, lo_j);
  } else {
    solver->AddLessEqual(lo_j, lo_i);
  }
  if (bands.high) {
    solver->AddLess(hi_j, hi_i);
  } else {
    solver->AddLessEqual(hi_i, hi_j);
  }
  if (bands.mid) {
    // Positive-width overlap with j's span.
    solver->AddLess(lo_i, hi_j);
    solver->AddLess(lo_j, hi_i);
  } else if (bands.low && !bands.high) {
    // Entirely in the low band.
    solver->AddLessEqual(hi_i, lo_j);
  } else if (bands.high && !bands.low) {
    solver->AddLessEqual(hi_j, lo_i);
  }
  // bands.low && bands.high && !bands.mid: span straddles j with a gap in
  // the middle band; no further order constraint (the cell stage enforces
  // the avoidance).
}

int SlotBand(int slot, int lo, int hi) {
  if (slot + 1 <= lo) return 0;
  if (slot >= hi) return 2;
  return 1;
}

}  // namespace

int ConstraintNetwork::AddVariable(std::string name) {
  const int old_n = variable_count();
  if (name.empty()) name = StrFormat("v%d", old_n);
  names_.push_back(std::move(name));
  const int n = old_n + 1;
  std::vector<std::optional<DisjunctiveRelation>> grown(
      static_cast<size_t>(n) * n);
  for (int i = 0; i < old_n; ++i) {
    for (int j = 0; j < old_n; ++j) {
      grown[static_cast<size_t>(i) * n + j] =
          std::move(constraints_[static_cast<size_t>(i) * old_n + j]);
    }
  }
  constraints_ = std::move(grown);
  return old_n;
}

Status ConstraintNetwork::AddConstraint(int i, int j,
                                        const DisjunctiveRelation& constraint) {
  const int n = variable_count();
  if (i < 0 || i >= n || j < 0 || j >= n) {
    return Status::OutOfRange(StrFormat("variable index out of range (n=%d)", n));
  }
  if (i == j) {
    return Status::InvalidArgument("self-constraints are not supported");
  }
  if (constraint.IsEmpty()) {
    return Status::InvalidArgument("empty (unsatisfiable) constraint");
  }
  std::optional<DisjunctiveRelation>& slot = constraints_[Index(i, j)];
  if (slot.has_value()) {
    *slot = slot->Intersection(constraint);
  } else {
    slot = constraint;
  }
  return Status::Ok();
}

const std::optional<DisjunctiveRelation>& ConstraintNetwork::constraint(
    int i, int j) const {
  CARDIR_CHECK(i >= 0 && i < variable_count() && j >= 0 &&
               j < variable_count() && i != j);
  return constraints_[Index(i, j)];
}

bool ConstraintNetwork::AlgebraicClosure(size_t max_product) {
  const int n = variable_count();
  bool changed = true;
  while (changed) {
    changed = false;
    // Inverse coupling: C_ij ← C_ij ∩ Inverse(C_ji).
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const std::optional<DisjunctiveRelation>& ji = constraints_[Index(j, i)];
        if (!ji.has_value()) continue;
        const DisjunctiveRelation inv = Inverse(*ji);
        std::optional<DisjunctiveRelation>& ij = constraints_[Index(i, j)];
        const DisjunctiveRelation refined =
            ij.has_value() ? ij->Intersection(inv) : inv;
        if (!ij.has_value() || !(refined == *ij)) {
          ij = refined;
          changed = true;
          if (refined.IsEmpty()) return false;
        }
      }
    }
    // Composition refinement: C_ik ← C_ik ∩ (C_ij ∘ C_jk).
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::optional<DisjunctiveRelation>& ij = constraints_[Index(i, j)];
        if (!ij.has_value()) continue;
        for (int k = 0; k < n; ++k) {
          if (k == i || k == j) continue;
          const std::optional<DisjunctiveRelation>& jk =
              constraints_[Index(j, k)];
          if (!jk.has_value()) continue;
          if (ij->Count() * jk->Count() > max_product) continue;
          const DisjunctiveRelation composed = Compose(*ij, *jk);
          std::optional<DisjunctiveRelation>& ik = constraints_[Index(i, k)];
          const DisjunctiveRelation refined =
              ik.has_value() ? ik->Intersection(composed) : composed;
          if (!ik.has_value() || !(refined == *ik)) {
            ik = refined;
            changed = true;
            if (refined.IsEmpty()) return false;
          }
        }
      }
    }
  }
  return true;
}

Result<NetworkModel> ConstraintNetwork::RealizeBasic() const {
  const int n = variable_count();
  if (n == 0) return NetworkModel{};

  // Collect the basic constraints.
  struct BasicConstraint {
    int i;
    int j;
    CardinalRelation relation;
  };
  std::vector<BasicConstraint> basics;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::optional<DisjunctiveRelation>& c = constraints_[Index(i, j)];
      if (!c.has_value()) continue;
      if (c->Count() != 1) {
        return Status::FailedPrecondition(
            "RealizeBasic requires basic (single-relation) constraints; use "
            "Solve() for disjunctive networks");
      }
      basics.push_back({i, j, c->Relations().front()});
    }
  }

  // Per-axis order constraints and canonical levels.
  OrderSolver x_solver(2 * n);
  OrderSolver y_solver(2 * n);
  for (int v = 0; v < n; ++v) {
    x_solver.AddLess(2 * v, 2 * v + 1);
    y_solver.AddLess(2 * v, 2 * v + 1);
  }
  for (const BasicConstraint& bc : basics) {
    AddAxisConstraints(ColumnBands(bc.relation), 2 * bc.i, 2 * bc.i + 1,
                       2 * bc.j, 2 * bc.j + 1, &x_solver);
    AddAxisConstraints(RowBands(bc.relation), 2 * bc.i, 2 * bc.i + 1,
                       2 * bc.j, 2 * bc.j + 1, &y_solver);
  }
  std::vector<int> x_level;
  std::vector<int> y_level;
  if (!x_solver.Solve(&x_level) || !y_solver.Solve(&y_level)) {
    return Status::Inconsistent(
        "endpoint order constraints are contradictory");
  }

  // Grid cells and per-variable allowed sets.
  // Slot s on an axis is the unit interval (s, s+1) between levels.
  auto tile_of_cell = [&](int sx, int sy, int ref) {
    const int col = SlotBand(sx, x_level[2 * ref], x_level[2 * ref + 1]);
    const int row = SlotBand(sy, y_level[2 * ref], y_level[2 * ref + 1]);
    return TileAt(static_cast<TileColumn>(col), static_cast<TileRow>(row));
  };

  // Group constraints by primary variable.
  std::vector<std::vector<const BasicConstraint*>> by_primary(n);
  for (const BasicConstraint& bc : basics) by_primary[bc.i].push_back(&bc);

  NetworkModel model;
  model.regions.resize(n);
  for (int v = 0; v < n; ++v) {
    const int x_lo = x_level[2 * v], x_hi = x_level[2 * v + 1];
    const int y_lo = y_level[2 * v], y_hi = y_level[2 * v + 1];
    // allowed[sx][sy] over the span slots.
    const int nx = x_hi - x_lo;
    const int ny = y_hi - y_lo;
    std::vector<std::vector<bool>> allowed(
        static_cast<size_t>(nx), std::vector<bool>(static_cast<size_t>(ny)));
    // Coverage bookkeeping per constraint: which required tiles were hit.
    std::vector<uint16_t> covered(by_primary[v].size(), 0);
    bool side_west = false, side_east = false, side_south = false,
         side_north = false;
    for (int sx = 0; sx < nx; ++sx) {
      for (int sy = 0; sy < ny; ++sy) {
        bool ok = true;
        for (const BasicConstraint* bc : by_primary[v]) {
          const Tile t = tile_of_cell(x_lo + sx, y_lo + sy, bc->j);
          if (!bc->relation.Includes(t)) {
            ok = false;
            break;
          }
        }
        allowed[sx][sy] = ok;
        if (!ok) continue;
        for (size_t ci = 0; ci < by_primary[v].size(); ++ci) {
          const Tile t =
              tile_of_cell(x_lo + sx, y_lo + sy, by_primary[v][ci]->j);
          covered[ci] |= static_cast<uint16_t>(1u << static_cast<int>(t));
        }
        if (sx == 0) side_west = true;
        if (sx == nx - 1) side_east = true;
        if (sy == 0) side_south = true;
        if (sy == ny - 1) side_north = true;
      }
    }
    if (!(side_west && side_east && side_south && side_north)) {
      return Status::Inconsistent(StrFormat(
          "variable %s cannot touch all four sides of its bounding box",
          names_[v].c_str()));
    }
    for (size_t ci = 0; ci < by_primary[v].size(); ++ci) {
      if (covered[ci] != by_primary[v][ci]->relation.mask()) {
        return Status::Inconsistent(StrFormat(
            "constraint %s %s %s is not coverable in the canonical model",
            names_[v].c_str(),
            by_primary[v][ci]->relation.ToString().c_str(),
            names_[by_primary[v][ci]->j].c_str()));
      }
    }
    // Materialise the allowed cells, merging horizontal runs per row.
    Region& region = model.regions[v];
    for (int sy = 0; sy < ny; ++sy) {
      int run_start = -1;
      for (int sx = 0; sx <= nx; ++sx) {
        const bool in = sx < nx && allowed[sx][sy];
        if (in && run_start < 0) run_start = sx;
        if (!in && run_start >= 0) {
          region.AddPolygon(MakeRectangle(
              x_lo + run_start, y_lo + sy, x_lo + sx, y_lo + sy + 1));
          run_start = -1;
        }
      }
    }
    CARDIR_CHECK(!region.empty());
  }
  return model;
}

Result<NetworkModel> ConstraintNetwork::Solve(size_t max_leaves) const {
  ConstraintNetwork pruned = *this;
  if (!pruned.AlgebraicClosure()) {
    return Status::Inconsistent("algebraic closure emptied a constraint");
  }
  // Find a branching point: a non-basic constraint with minimal count.
  const int n = pruned.variable_count();
  int best_i = -1, best_j = -1;
  size_t best_count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::optional<DisjunctiveRelation>& c = pruned.constraint(i, j);
      if (!c.has_value() || c->Count() <= 1) continue;
      if (best_i < 0 || c->Count() < best_count) {
        best_i = i;
        best_j = j;
        best_count = c->Count();
      }
    }
  }
  if (best_i < 0) {
    // All constraints basic (or absent): certify with the canonical model.
    Result<NetworkModel> model = pruned.RealizeBasic();
    if (model.ok()) return model;
    return Status::Inconsistent(model.status().message());
  }
  size_t budget = max_leaves;
  for (const CardinalRelation& choice :
       pruned.constraint(best_i, best_j)->Relations()) {
    if (budget == 0) {
      return Status::FailedPrecondition(
          "search budget exhausted before deciding consistency");
    }
    ConstraintNetwork branch = pruned;
    branch.constraints_[branch.Index(best_i, best_j)] =
        DisjunctiveRelation(choice);
    Result<NetworkModel> result = branch.Solve(budget);
    if (result.ok()) return result;
    if (result.status().code() == StatusCode::kFailedPrecondition) {
      return result.status();
    }
    --budget;
  }
  return Status::Inconsistent("all basic refinements are inconsistent");
}

Result<ConstraintNetwork> ConstraintNetwork::FromRegions(
    const std::vector<Region>& regions) {
  ConstraintNetwork network;
  for (size_t i = 0; i < regions.size(); ++i) {
    network.AddVariable(StrFormat("r%zu", i));
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      CARDIR_ASSIGN_OR_RETURN(CardinalRelation relation,
                              ComputeCdr(regions[i], regions[j]));
      CARDIR_RETURN_IF_ERROR(network.AddConstraint(
          static_cast<int>(i), static_cast<int>(j), relation));
    }
  }
  return network;
}

}  // namespace cardir
