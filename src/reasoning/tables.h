// Human-readable reasoning tables: the single-tile composition table and
// the inverse table that the companion papers [20,21,22] publish. Useful
// for documentation, debugging, and regression-testing the model-search
// reasoning engine against the literature.

#ifndef CARDIR_REASONING_TABLES_H_
#define CARDIR_REASONING_TABLES_H_

#include <string>

namespace cardir {

/// The 9×9 existential composition table over single-tile relations, one
/// line per (R, S) pair: "R o S = {...}".
std::string SingleTileCompositionTable();

/// The inverse of every single-tile relation, one line per tile.
std::string SingleTileInverseTable();

/// Summary statistics of the full 511-relation inverse table (min/max/mean
/// disjunction size) — a cheap fingerprint of the reasoning engine.
std::string InverseTableStatistics();

}  // namespace cardir

#endif  // CARDIR_REASONING_TABLES_H_
