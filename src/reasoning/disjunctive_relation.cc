#include "reasoning/disjunctive_relation.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

DisjunctiveRelation DisjunctiveRelation::Universal() {
  DisjunctiveRelation out;
  for (uint16_t mask = 1; mask <= 511; ++mask) out.bits_.set(mask);
  return out;
}

Result<DisjunctiveRelation> DisjunctiveRelation::Parse(std::string_view text) {
  std::string_view body = StripWhitespace(text);
  DisjunctiveRelation out;
  if (!body.empty() && body.front() == '{') {
    if (body.back() != '}') {
      return Status::ParseError("unterminated '{' in disjunctive relation");
    }
    body = body.substr(1, body.size() - 2);
    if (StripWhitespace(body).empty()) return out;  // "{}" = empty.
    for (const std::string& piece : StrSplit(body, ',')) {
      CARDIR_ASSIGN_OR_RETURN(CardinalRelation relation,
                              CardinalRelation::Parse(piece));
      out.Add(relation);
    }
    return out;
  }
  CARDIR_ASSIGN_OR_RETURN(CardinalRelation relation,
                          CardinalRelation::Parse(body));
  out.Add(relation);
  return out;
}

void DisjunctiveRelation::Add(const CardinalRelation& relation) {
  CARDIR_CHECK(!relation.IsEmpty()) << "cannot add the empty relation";
  bits_.set(relation.mask());
}

void DisjunctiveRelation::Remove(const CardinalRelation& relation) {
  if (!relation.IsEmpty()) bits_.reset(relation.mask());
}

DisjunctiveRelation DisjunctiveRelation::Union(
    const DisjunctiveRelation& other) const {
  DisjunctiveRelation out;
  out.bits_ = bits_ | other.bits_;
  return out;
}

DisjunctiveRelation DisjunctiveRelation::Intersection(
    const DisjunctiveRelation& other) const {
  DisjunctiveRelation out;
  out.bits_ = bits_ & other.bits_;
  return out;
}

std::vector<CardinalRelation> DisjunctiveRelation::Relations() const {
  std::vector<CardinalRelation> out;
  out.reserve(bits_.count());
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    if (bits_.test(mask)) out.push_back(CardinalRelation::FromMask(mask));
  }
  return out;
}

std::string DisjunctiveRelation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const CardinalRelation& r : Relations()) {
    if (!first) out += ", ";
    out += r.ToString();
    first = false;
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const DisjunctiveRelation& r) {
  return os << r.ToString();
}

}  // namespace cardir
