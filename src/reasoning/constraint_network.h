// Networks of cardinal direction constraints and their consistency
// (paper §2, after [21,22]: "algorithms that calculate ... the consistency
// of a set of cardinal direction constraints").
//
// A network has variables v_0..v_{n-1} (regions in REG*) and constraints
// v_i C_ij v_j where C_ij is a disjunctive cardinal direction relation.
// Services:
//   * AlgebraicClosure() — path-consistency style pruning using Compose()
//     and Inverse(); sound for detecting inconsistency, not complete.
//   * RealizeBasic()     — for networks whose constraints are all basic:
//     derives the endpoint order constraints implied by each relation,
//     builds a canonical coordinate assignment, and constructs an explicit
//     model (one Region per variable, unions of grid-cell rectangles) or
//     reports inconsistency. This reconstructs the CONSISTENCY procedure of
//     [21] in spirit; the canonical order is a heuristic choice, so a
//     failure on an exotic satisfiable network is conservative (see
//     DESIGN.md §6.4).
//   * Solve()            — backtracking over basic choices with closure
//     pruning, certifying leaves with RealizeBasic().

#ifndef CARDIR_REASONING_CONSTRAINT_NETWORK_H_
#define CARDIR_REASONING_CONSTRAINT_NETWORK_H_

#include <optional>
#include <string>
#include <vector>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "reasoning/disjunctive_relation.h"
#include "util/status.h"

namespace cardir {

/// A model of a constraint network: one region per variable, satisfying
/// every constraint exactly (verifiable with ComputeCdr).
struct NetworkModel {
  std::vector<Region> regions;
};

/// Variables plus (optionally disjunctive) cardinal direction constraints.
class ConstraintNetwork {
 public:
  ConstraintNetwork() = default;

  /// Adds a variable; returns its index.
  int AddVariable(std::string name = "");

  int variable_count() const { return static_cast<int>(names_.size()); }
  const std::string& variable_name(int i) const { return names_[i]; }

  /// Constrains v_i C v_j, intersecting with any existing constraint on the
  /// ordered pair. Fails on out-of-range indices, i == j, or an empty C.
  Status AddConstraint(int i, int j, const DisjunctiveRelation& constraint);
  Status AddConstraint(int i, int j, const CardinalRelation& relation) {
    return AddConstraint(i, j, DisjunctiveRelation(relation));
  }

  /// The constraint on the ordered pair (i, j); nullopt when unconstrained.
  const std::optional<DisjunctiveRelation>& constraint(int i, int j) const;

  /// Tightens constraints by (a) coupling each C_ij with Inverse(C_ji) and
  /// (b) refining C_ik by Compose(C_ij, C_jk) to a fixpoint. Compositions
  /// whose operand disjunction product exceeds `max_product` are skipped
  /// (keeps the closure polynomial in practice). Returns false when some
  /// constraint becomes empty — the network is certainly inconsistent.
  bool AlgebraicClosure(size_t max_product = 64);

  /// Requires every present constraint to be basic (a single relation).
  /// Returns an explicit model or kInconsistent / kFailedPrecondition.
  Result<NetworkModel> RealizeBasic() const;

  /// Decides consistency by branch-and-prune over basic choices; returns a
  /// model on success, kInconsistent when the search space is exhausted, or
  /// kFailedPrecondition when `max_leaves` basic candidates were refuted
  /// without an answer.
  Result<NetworkModel> Solve(size_t max_leaves = 4096) const;

  /// Builds the complete basic network induced by concrete regions
  /// (computing pairwise relations with Compute-CDR) — always consistent,
  /// used by tests and benchmarks.
  static Result<ConstraintNetwork> FromRegions(
      const std::vector<Region>& regions);

 private:
  int Index(int i, int j) const { return i * variable_count() + j; }

  std::vector<std::string> names_;
  // Row-major (i, j) -> constraint; nullopt = unconstrained.
  std::vector<std::optional<DisjunctiveRelation>> constraints_;
};

}  // namespace cardir

#endif  // CARDIR_REASONING_CONSTRAINT_NETWORK_H_
