#include "reasoning/interval_algebra.h"

#include <array>
#include <bit>

#include "reasoning/canonical_model.h"
#include "util/logging.h"

namespace cardir {
namespace {

constexpr std::array<std::string_view, kNumAllenRelations> kNames = {
    "before",   "meets",    "overlaps",     "finishedBy", "contains",
    "starts",   "equals",   "startedBy",    "during",     "finishes",
    "overlappedBy", "metBy", "after"};

using CompositionTable =
    std::array<std::array<AllenSet, kNumAllenRelations>, kNumAllenRelations>;

// Derives the 13×13 composition table by enumerating every canonical weak
// order of three intervals' endpoints (reasoning/canonical_model.h) and
// recording, for each configuration, the triple of pairwise relations.
CompositionTable BuildCompositionTable() {
  CompositionTable table{};
  for (const std::vector<int8_t>& cfg :
       internal_model::EnumerateAxisConfigs(3)) {
    const AllenRelation ab = ClassifyIntervals(cfg[0], cfg[1], cfg[2], cfg[3]);
    const AllenRelation bc = ClassifyIntervals(cfg[2], cfg[3], cfg[4], cfg[5]);
    const AllenRelation ac = ClassifyIntervals(cfg[0], cfg[1], cfg[4], cfg[5]);
    table[static_cast<size_t>(ab)][static_cast<size_t>(bc)].Add(ac);
  }
  return table;
}

const CompositionTable& GetCompositionTable() {
  static const CompositionTable& table =
      *new CompositionTable(BuildCompositionTable());
  return table;
}

}  // namespace

std::string_view AllenRelationName(AllenRelation relation) {
  return kNames[static_cast<size_t>(relation)];
}

bool ParseAllenRelation(std::string_view name, AllenRelation* relation) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if (kNames[static_cast<size_t>(i)] == name) {
      *relation = static_cast<AllenRelation>(i);
      return true;
    }
  }
  return false;
}

AllenRelation AllenConverse(AllenRelation relation) {
  return static_cast<AllenRelation>(kNumAllenRelations - 1 -
                                    static_cast<int>(relation));
}

AllenRelation ClassifyIntervals(double a_lo, double a_hi, double b_lo,
                                double b_hi) {
  CARDIR_DCHECK(a_lo < a_hi && b_lo < b_hi) << "degenerate interval";
  if (a_hi < b_lo) return AllenRelation::kBefore;
  if (a_hi == b_lo) return AllenRelation::kMeets;
  if (b_hi < a_lo) return AllenRelation::kAfter;
  if (b_hi == a_lo) return AllenRelation::kMetBy;
  // The intervals properly overlap; compare endpoints.
  if (a_lo == b_lo) {
    if (a_hi == b_hi) return AllenRelation::kEquals;
    return a_hi < b_hi ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a_hi == b_hi) {
    return a_lo < b_lo ? AllenRelation::kFinishedBy : AllenRelation::kFinishes;
  }
  if (a_lo < b_lo) {
    return a_hi < b_hi ? AllenRelation::kOverlaps : AllenRelation::kContains;
  }
  return a_hi < b_hi ? AllenRelation::kDuring : AllenRelation::kOverlappedBy;
}

int AllenSet::Count() const { return std::popcount(bits_); }

std::vector<AllenRelation> AllenSet::Relations() const {
  std::vector<AllenRelation> out;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if (Contains(static_cast<AllenRelation>(i))) {
      out.push_back(static_cast<AllenRelation>(i));
    }
  }
  return out;
}

std::string AllenSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (AllenRelation r : Relations()) {
    if (!first) out += ", ";
    out += AllenRelationName(r);
    first = false;
  }
  out += "}";
  return out;
}

AllenSet AllenCompose(AllenRelation r, AllenRelation s) {
  return GetCompositionTable()[static_cast<size_t>(r)][static_cast<size_t>(s)];
}

AllenSet AllenConverse(const AllenSet& set) {
  AllenSet out;
  for (AllenRelation r : set.Relations()) out.Add(AllenConverse(r));
  return out;
}

std::ostream& operator<<(std::ostream& os, AllenRelation relation) {
  return os << AllenRelationName(relation);
}

std::ostream& operator<<(std::ostream& os, const AllenSet& set) {
  return os << set.ToString();
}

}  // namespace cardir
