#include "reasoning/composition.h"

#include <array>
#include <cstdint>
#include <map>
#include <mutex>

#include "reasoning/canonical_model.h"
#include "util/logging.h"

namespace cardir {
namespace {

// Availability masks of a's grid cells (w.r.t. c) once the cells are
// filtered to those whose tile w.r.t. b lies in R.
struct AllowedCellMasks {
  uint16_t c_tiles = 0;                    // Tiles w.r.t. c of allowed cells.
  std::array<uint16_t, kNumTiles> per_b{}; // c-tiles per b-tile r ∈ R.
  uint16_t first_x = 0, last_x = 0, first_y = 0, last_y = 0;

  friend bool operator<(const AllowedCellMasks& a, const AllowedCellMasks& b) {
    if (a.c_tiles != b.c_tiles) return a.c_tiles < b.c_tiles;
    if (a.per_b != b.per_b) return a.per_b < b.per_b;
    if (a.first_x != b.first_x) return a.first_x < b.first_x;
    if (a.last_x != b.last_x) return a.last_x < b.last_x;
    if (a.first_y != b.first_y) return a.first_y < b.first_y;
    return a.last_y < b.last_y;
  }
};

uint16_t TileBit(int column_band, int row_band) {
  const Tile tile = TileAt(static_cast<TileColumn>(column_band),
                           static_cast<TileRow>(row_band));
  return static_cast<uint16_t>(1u << static_cast<int>(tile));
}

// All exact c-tile coverages T achievable from the allowed cells, given that
// the b-tile coverage must be exactly `r_mask`.
std::bitset<512> AchievableTargets(uint16_t r_mask,
                                   const AllowedCellMasks& masks) {
  std::bitset<512> out;
  // Every tile of R must be coverable at all.
  for (int i = 0; i < kNumTiles; ++i) {
    if ((r_mask & (1u << i)) != 0 && masks.per_b[i] == 0) return out;
  }
  if (masks.c_tiles == 0) return out;
  // Enumerate non-empty submasks T of the available c-tiles.
  for (uint16_t t = masks.c_tiles;; t = static_cast<uint16_t>((t - 1) & masks.c_tiles)) {
    if (t == 0) break;
    bool ok = (t & masks.first_x) != 0 && (t & masks.last_x) != 0 &&
              (t & masks.first_y) != 0 && (t & masks.last_y) != 0;
    if (ok) {
      for (int i = 0; i < kNumTiles && ok; ++i) {
        if ((r_mask & (1u << i)) != 0 && (t & masks.per_b[i]) == 0) ok = false;
      }
    }
    if (ok) out.set(t);
  }
  return out;
}

// Memoised wrapper around AchievableTargets.
const std::bitset<512>& MemoAchievableTargets(uint16_t r_mask,
                                              const AllowedCellMasks& masks) {
  static std::map<std::pair<uint16_t, AllowedCellMasks>, std::bitset<512>>&
      memo = *new std::map<std::pair<uint16_t, AllowedCellMasks>,
                           std::bitset<512>>();
  const auto key = std::make_pair(r_mask, masks);
  auto it = memo.find(key);
  if (it == memo.end()) {
    it = memo.emplace(key, AchievableTargets(r_mask, masks)).first;
  }
  return it->second;
}

std::bitset<512> ComposeMasks(uint16_t r_mask, uint16_t s_mask) {
  std::bitset<512> result;
  const std::vector<TripleAxisSignature>& sigs = AllTripleAxisSignatures();
  for (const TripleAxisSignature& x : sigs) {
    for (const TripleAxisSignature& y : sigs) {
      // b must realise S w.r.t. c in this configuration.
      if (!PairFeasible(s_mask, MakePairTileSets(x.b_slots, y.b_slots))) {
        continue;
      }
      // Build the allowed-cell masks for a (cells whose b-tile is in R).
      AllowedCellMasks masks;
      const size_t nx = x.a_slots.size();
      const size_t ny = y.a_slots.size();
      for (size_t i = 0; i < nx; ++i) {
        const int bx = x.a_slots[i] / 3;
        const int cx = x.a_slots[i] % 3;
        for (size_t j = 0; j < ny; ++j) {
          const int by = y.a_slots[j] / 3;
          const int cy = y.a_slots[j] % 3;
          const Tile tile_b = TileAt(static_cast<TileColumn>(bx),
                                     static_cast<TileRow>(by));
          if ((r_mask & (1u << static_cast<int>(tile_b))) == 0) continue;
          const uint16_t c_bit = TileBit(cx, cy);
          masks.c_tiles |= c_bit;
          masks.per_b[static_cast<int>(tile_b)] |= c_bit;
          if (i == 0) masks.first_x |= c_bit;
          if (i == nx - 1) masks.last_x |= c_bit;
          if (j == 0) masks.first_y |= c_bit;
          if (j == ny - 1) masks.last_y |= c_bit;
        }
      }
      result |= MemoAchievableTargets(r_mask, masks);
    }
  }
  return result;
}

}  // namespace

DisjunctiveRelation Compose(const CardinalRelation& r,
                            const CardinalRelation& s) {
  CARDIR_CHECK(!r.IsEmpty() && !s.IsEmpty()) << "composition of empty relation";
  static std::mutex& mu = *new std::mutex();
  static std::map<uint32_t, DisjunctiveRelation>& memo =
      *new std::map<uint32_t, DisjunctiveRelation>();
  const uint32_t key = (static_cast<uint32_t>(r.mask()) << 16) | s.mask();
  // The lock covers the whole computation: it also serialises access to the
  // AchievableTargets memo inside ComposeMasks.
  std::lock_guard<std::mutex> lock(mu);
  auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  DisjunctiveRelation out;
  out.mutable_bits() = ComposeMasks(r.mask(), s.mask());
  memo.emplace(key, out);
  return out;
}

DisjunctiveRelation Compose(const DisjunctiveRelation& r,
                            const DisjunctiveRelation& s) {
  DisjunctiveRelation out;
  for (const CardinalRelation& br : r.Relations()) {
    for (const CardinalRelation& bs : s.Relations()) {
      out.mutable_bits() |= Compose(br, bs).bits();
    }
  }
  return out;
}

}  // namespace cardir
