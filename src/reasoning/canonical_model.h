// Canonical rectangle-grid models for cardinal direction reasoning.
//
// The reasoning services summarised in §2 of the paper (inverse,
// composition, consistency — developed in the companion papers [20,21,22])
// are implemented here *semantically*: a configuration of regions is
// abstracted per axis by the weak order of the regions' span endpoints, and
// regions are realised as unions of grid cells. This is complete for REG*
// because REG* regions are regular closed sets: wherever a region attains a
// span bound or occupies a tile it does so with positive area, so any
// satisfiable configuration has a model whose regions are finite unions of
// axis-aligned rectangles over the grid spanned by all mbb lines.
//
// Per axis, a region contributes two endpoints (lo < hi). A *configuration*
// assigns each endpoint an integer level such that the used levels are
// 0..max with no gaps (a canonical weak order). The unit interval between
// consecutive levels is a *slot*; a slot inside a region's span is labelled
// by its band (low/mid/high) relative to every other region's span. Cells
// are x-slot × y-slot products; a cell's tile w.r.t. region r is
// TileAt(band_x(r), band_y(r)).
//
// A region "realises relation R w.r.t. r with exact span" iff
//   (1) every tile of R is the tile of some cell inside the span, and
//   (2) each of the four extreme slot-strips of the span contains a cell
//       whose tile is in R (so the region touches all four mbb sides).
// When both hold, taking *all* span cells with tile ∈ R is a model.

#ifndef CARDIR_REASONING_CANONICAL_MODEL_H_
#define CARDIR_REASONING_CANONICAL_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/cardinal_relation.h"
#include "core/tile.h"

namespace cardir {

/// Per-axis tile availability masks for one (primary, reference) pair:
/// `avail` is the set of tiles of cells inside the primary's span, and the
/// four side masks restrict to the extreme slot-strips of the span.
struct PairTileSets {
  uint16_t avail = 0;
  uint16_t first_x = 0;  ///< Cells in the westmost slot of the span.
  uint16_t last_x = 0;   ///< Eastmost slot.
  uint16_t first_y = 0;  ///< Southmost slot.
  uint16_t last_y = 0;   ///< Northmost slot.
};

/// True when `relation_mask` (9-bit tile mask, non-zero) is realisable with
/// the availability masks of `sets`.
bool PairFeasible(uint16_t relation_mask, const PairTileSets& sets);

/// Bands (0 = low/west/south, 1 = mid, 2 = high/east/north) of the slots of
/// one region's span relative to the other regions, for one axis.
struct PairAxisView {
  /// Band of each slot of the *primary* span w.r.t. the reference span,
  /// in axis order. Non-empty (spans are non-degenerate).
  std::vector<int8_t> primary_bands;
};

/// One deduplicated two-region axis signature: the slot bands of a w.r.t. b
/// and of b w.r.t. a.
struct PairAxisSignature {
  std::vector<int8_t> a_wrt_b;
  std::vector<int8_t> b_wrt_a;

  friend bool operator==(const PairAxisSignature& x,
                         const PairAxisSignature& y) {
    return x.a_wrt_b == y.a_wrt_b && x.b_wrt_a == y.b_wrt_a;
  }
  friend bool operator<(const PairAxisSignature& x,
                        const PairAxisSignature& y) {
    if (x.a_wrt_b != y.a_wrt_b) return x.a_wrt_b < y.a_wrt_b;
    return x.b_wrt_a < y.b_wrt_a;
  }
};

/// All distinct two-region axis signatures (computed once, cached).
const std::vector<PairAxisSignature>& AllPairAxisSignatures();

/// Combines an x and a y signature into availability masks for (a w.r.t. b).
PairTileSets MakePairTileSets(const std::vector<int8_t>& x_bands,
                              const std::vector<int8_t>& y_bands);

/// One deduplicated three-region axis signature (regions a, b, c): slots of
/// a's span carry (band w.r.t. b, band w.r.t. c); slots of b's span carry
/// the band w.r.t. c (b's availability masks for realising S w.r.t. c).
struct TripleAxisSignature {
  /// (band of slot w.r.t. b) * 3 + (band w.r.t. c), per slot of a's span.
  std::vector<int8_t> a_slots;
  /// band w.r.t. c, per slot of b's span.
  std::vector<int8_t> b_slots;

  friend bool operator==(const TripleAxisSignature& x,
                         const TripleAxisSignature& y) {
    return x.a_slots == y.a_slots && x.b_slots == y.b_slots;
  }
  friend bool operator<(const TripleAxisSignature& x,
                        const TripleAxisSignature& y) {
    if (x.a_slots != y.a_slots) return x.a_slots < y.a_slots;
    return x.b_slots < y.b_slots;
  }
};

/// All distinct three-region axis signatures (computed once, cached).
const std::vector<TripleAxisSignature>& AllTripleAxisSignatures();

/// True when some two-region configuration realises `relation_mask` — every
/// non-empty tile set should pass (all 511 relations of D* are satisfiable).
bool RelationRealizable(uint16_t relation_mask);

namespace internal_model {

/// Enumerates all canonical endpoint-level assignments for `num_regions`
/// regions on one axis (each region's lo strictly below its hi; levels form
/// a gapless prefix 0..max). Exposed for tests.
std::vector<std::vector<int8_t>> EnumerateAxisConfigs(int num_regions);

/// Band (0/1/2) of slot (level, level+1) relative to span [lo, hi].
inline int SlotBand(int slot, int lo, int hi) {
  if (slot + 1 <= lo) return 0;
  if (slot >= hi) return 2;
  return 1;
}

}  // namespace internal_model
}  // namespace cardir

#endif  // CARDIR_REASONING_CANONICAL_MODEL_H_
