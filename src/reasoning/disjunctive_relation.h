// Disjunctive cardinal direction relations (paper §2): elements of the
// powerset 2^{D*} of the 511 basic relations. Used to represent indefinite
// information (e.g. a {N, W} b), inverses, compositions and the constraint
// side of CARDIRECT queries.

#ifndef CARDIR_REASONING_DISJUNCTIVE_RELATION_H_
#define CARDIR_REASONING_DISJUNCTIVE_RELATION_H_

#include <bitset>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/cardinal_relation.h"
#include "util/status.h"

namespace cardir {

/// A set of basic relations, stored as a bitset indexed by the 9-bit tile
/// mask of each basic relation (indices 1..511; index 0 unused).
class DisjunctiveRelation {
 public:
  /// The empty disjunction (unsatisfiable constraint).
  DisjunctiveRelation() = default;

  /// The singleton disjunction {relation}.
  explicit DisjunctiveRelation(const CardinalRelation& relation) {
    Add(relation);
  }

  /// The universal relation: all 511 basic relations.
  static DisjunctiveRelation Universal();

  /// Parses "{B:S, N, NE:E}" or a bare basic relation "B:S".
  static Result<DisjunctiveRelation> Parse(std::string_view text);

  bool IsEmpty() const { return bits_.none(); }
  size_t Count() const { return bits_.count(); }

  bool Contains(const CardinalRelation& relation) const {
    return !relation.IsEmpty() && bits_.test(relation.mask());
  }

  void Add(const CardinalRelation& relation);
  void Remove(const CardinalRelation& relation);

  DisjunctiveRelation Union(const DisjunctiveRelation& other) const;
  DisjunctiveRelation Intersection(const DisjunctiveRelation& other) const;

  bool IsSubsetOf(const DisjunctiveRelation& other) const {
    return (bits_ & ~other.bits_).none();
  }

  /// The basic relations in ascending mask order.
  std::vector<CardinalRelation> Relations() const;

  /// "{B:S, N}" rendering; "{}" when empty.
  std::string ToString() const;

  /// Direct bitset access for the reasoning algorithms.
  const std::bitset<512>& bits() const { return bits_; }
  std::bitset<512>& mutable_bits() { return bits_; }

  friend bool operator==(const DisjunctiveRelation& a,
                         const DisjunctiveRelation& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::bitset<512> bits_;
};

std::ostream& operator<<(std::ostream& os, const DisjunctiveRelation& r);

}  // namespace cardir

#endif  // CARDIR_REASONING_DISJUNCTIVE_RELATION_H_
