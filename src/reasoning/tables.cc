#include "reasoning/tables.h"

#include <algorithm>

#include "reasoning/composition.h"
#include "reasoning/inverse.h"
#include "util/string_util.h"

namespace cardir {

std::string SingleTileCompositionTable() {
  std::string out;
  for (Tile r : kAllTiles) {
    for (Tile s : kAllTiles) {
      const DisjunctiveRelation composed =
          Compose(CardinalRelation(r), CardinalRelation(s));
      out += StrFormat("%-2s o %-2s = ", std::string(TileName(r)).c_str(),
                       std::string(TileName(s)).c_str());
      if (composed.Count() == 511) {
        out += "D* (all 511 relations)";
      } else if (composed.Count() > 24) {
        out += StrFormat("(%zu relations)", composed.Count());
      } else {
        out += composed.ToString();
      }
      out += '\n';
    }
  }
  return out;
}

std::string SingleTileInverseTable() {
  std::string out;
  for (Tile t : kAllTiles) {
    const DisjunctiveRelation inverse = Inverse(CardinalRelation(t));
    out += StrFormat("inv(%-2s) = %s\n", std::string(TileName(t)).c_str(),
                     inverse.ToString().c_str());
  }
  return out;
}

std::string InverseTableStatistics() {
  size_t min_size = 512, max_size = 0, total = 0;
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    const size_t n = Inverse(CardinalRelation::FromMask(mask)).Count();
    min_size = std::min(min_size, n);
    max_size = std::max(max_size, n);
    total += n;
  }
  return StrFormat(
      "inverse table over 511 basic relations: min |inv| = %zu, "
      "max |inv| = %zu, mean |inv| = %.2f",
      min_size, max_size, static_cast<double>(total) / 511.0);
}

}  // namespace cardir
