// Allen's interval algebra on one axis — the 1-D substrate beneath the tile
// model: a region's column (west/middle/east) relative to a reference is a
// coarsening of the Allen relation between the x-projections of the two
// mbbs, and the canonical-model machinery enumerates exactly these interval
// configurations. Exposed as a first-class algebra with the classification,
// converse and composition operations; the composition table is *derived*
// from the endpoint-order enumeration (reasoning/canonical_model.h) rather
// than transcribed, and regression-tested against the published table.

#ifndef CARDIR_REASONING_INTERVAL_ALGEBRA_H_
#define CARDIR_REASONING_INTERVAL_ALGEBRA_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cardir {

/// Allen's 13 basic interval relations, ordered so that the converse of
/// relation i is relation 12 − i.
enum class AllenRelation : int {
  kBefore = 0,
  kMeets = 1,
  kOverlaps = 2,
  kFinishedBy = 3,
  kContains = 4,
  kStarts = 5,
  kEquals = 6,
  kStartedBy = 7,
  kDuring = 8,
  kFinishes = 9,
  kOverlappedBy = 10,
  kMetBy = 11,
  kAfter = 12,
};

inline constexpr int kNumAllenRelations = 13;

/// Canonical lowercase name ("before", "meets", ...).
std::string_view AllenRelationName(AllenRelation relation);

/// Parses a canonical name; returns false on failure.
bool ParseAllenRelation(std::string_view name, AllenRelation* relation);

/// The converse relation (before ↔ after, starts ↔ startedBy, ...).
AllenRelation AllenConverse(AllenRelation relation);

/// Classifies the relation of interval [a_lo, a_hi] to [b_lo, b_hi].
/// Requires non-degenerate intervals (lo < hi).
AllenRelation ClassifyIntervals(double a_lo, double a_hi, double b_lo,
                                double b_hi);

/// A set of Allen relations (disjunction), as produced by composition.
class AllenSet {
 public:
  AllenSet() = default;
  explicit AllenSet(AllenRelation relation) { Add(relation); }

  static AllenSet All() {
    AllenSet set;
    set.bits_ = (1u << kNumAllenRelations) - 1;
    return set;
  }

  bool IsEmpty() const { return bits_ == 0; }
  int Count() const;
  bool Contains(AllenRelation relation) const {
    return (bits_ & (1u << static_cast<int>(relation))) != 0;
  }
  void Add(AllenRelation relation) {
    bits_ |= static_cast<uint16_t>(1u << static_cast<int>(relation));
  }

  AllenSet Union(const AllenSet& other) const {
    AllenSet out;
    out.bits_ = bits_ | other.bits_;
    return out;
  }
  AllenSet Intersection(const AllenSet& other) const {
    AllenSet out;
    out.bits_ = bits_ & other.bits_;
    return out;
  }
  bool IsSubsetOf(const AllenSet& other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  std::vector<AllenRelation> Relations() const;

  /// "{before, meets}" rendering.
  std::string ToString() const;

  friend bool operator==(const AllenSet& a, const AllenSet& b) {
    return a.bits_ == b.bits_;
  }

 private:
  uint16_t bits_ = 0;
};

/// Existential composition: { t : ∃ intervals a, b, c with a r b, b s c,
/// a t c }. Derived once from the canonical three-interval enumeration.
AllenSet AllenCompose(AllenRelation r, AllenRelation s);

/// Converse of a set (member-wise).
AllenSet AllenConverse(const AllenSet& set);

std::ostream& operator<<(std::ostream& os, AllenRelation relation);
std::ostream& operator<<(std::ostream& os, const AllenSet& set);

}  // namespace cardir

#endif  // CARDIR_REASONING_INTERVAL_ALGEBRA_H_
