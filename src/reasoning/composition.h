// Existential composition of cardinal direction relations (paper §2, after
// [20,22]):
//
//   Compose(R, S) = { T : ∃ a, b, c ∈ REG* with a R b, b S c and a T c }.
//
// Computed by exhaustive search over the canonical three-region models
// (reasoning/canonical_model.h): per configuration, b must realise S w.r.t.
// c, and a picks grid cells whose tiles w.r.t. b cover exactly R — the tiles
// those cells cover w.r.t. c are the possible T. Results are memoised per
// (R, S) pair.

#ifndef CARDIR_REASONING_COMPOSITION_H_
#define CARDIR_REASONING_COMPOSITION_H_

#include "core/cardinal_relation.h"
#include "reasoning/disjunctive_relation.h"

namespace cardir {

/// Existential composition of basic relations. CHECK-fails on empty inputs.
/// Thread-safe (internal memo guarded by a mutex).
DisjunctiveRelation Compose(const CardinalRelation& r,
                            const CardinalRelation& s);

/// Composition of disjunctive relations: union over member pairs.
DisjunctiveRelation Compose(const DisjunctiveRelation& r,
                            const DisjunctiveRelation& s);

}  // namespace cardir

#endif  // CARDIR_REASONING_COMPOSITION_H_
